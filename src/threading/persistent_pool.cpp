#include "threading/persistent_pool.hpp"

#include <chrono>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "common/knobs.hpp"
#include "obs/gemm_stats.hpp"
#include "obs/telemetry.hpp"
#include "threading/spin.hpp"
#include "threading/topology.hpp"

namespace ag {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Batch workers get their own name prefix ("armgemm-pw") so timelines and
/// /proc distinguish them from the fork-join pool's "armgemm-w" ranks.
void name_batch_thread(int rank) {
#if defined(__linux__)
  char name[16];
  std::snprintf(name, sizeof(name), "armgemm-pw%d", rank);
  pthread_setname_np(pthread_self(), name);
#else
  (void)rank;
#endif
}

}  // namespace

PersistentPool::StealOrder PersistentPool::build_steal_order(const Topology& topo,
                                                             int home, int node) {
  StealOrder order;
  order.shards.reserve(kShards);
  order.shards.push_back(home);
  for (int i = 1; i < kShards; ++i) {
    const int s = (home + i) % kShards;
    if (topo.node_of_rank(s) == node) order.shards.push_back(s);
  }
  order.same_node = static_cast<int>(order.shards.size());
  for (int i = 1; i < kShards; ++i) {
    const int s = (home + i) % kShards;
    if (topo.node_of_rank(s) != node) order.shards.push_back(s);
  }
  return order;
}

PersistentPool& PersistentPool::instance() {
  // Leaky singleton: retiring the workers during static destruction would
  // race other translation units' teardown; the OS reclaims the threads.
  // The obs snapshot source registers here (once, under the magic-static
  // guard) because obs cannot link back to threading.
  static PersistentPool* pool = [] {
    auto* p = new PersistentPool;
    obs::set_scheduler_stats_source(
        +[] { return PersistentPool::instance().stats(); });
    return p;
  }();
  return *pool;
}

void PersistentPool::resize(int n) {
  if (n < 0) n = 0;
  std::lock_guard lock(resize_mutex_);
  const int cur = static_cast<int>(threads_.size());
  if (n > cur) {
    target_.store(n, std::memory_order_release);
    if (n > peak_workers_.load(std::memory_order_relaxed))
      peak_workers_.store(n, std::memory_order_relaxed);
    threads_.reserve(static_cast<std::size_t>(n));
    for (int r = cur; r < n; ++r) threads_.emplace_back([this, r] { worker_loop(r); });
  } else if (n < cur) {
    target_.store(n, std::memory_order_release);
    // The empty critical section orders the target_ store against a
    // blocked worker's predicate check (no lost retirement wakeup).
    { std::lock_guard wl(work_mutex_); }
    work_cv_.notify_all();
    for (int r = n; r < cur; ++r) threads_[static_cast<std::size_t>(r)].join();
    threads_.resize(static_cast<std::size_t>(n));
  }
}

void PersistentPool::ensure_workers(int n) {
  if (n <= target_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(resize_mutex_);
  const int cur = static_cast<int>(threads_.size());
  if (n <= cur) return;
  target_.store(n, std::memory_order_release);
  if (n > peak_workers_.load(std::memory_order_relaxed))
    peak_workers_.store(n, std::memory_order_relaxed);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int r = cur; r < n; ++r) threads_.emplace_back([this, r] { worker_loop(r); });
}

void PersistentPool::wake_workers() {
  {
    std::lock_guard lock(work_mutex_);
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();
}

bool PersistentPool::try_pop(const StealOrder& order, bool allow_remote, Item* out,
                             PopInfo* pop, SchedCounters* sc) {
  const int limit = allow_remote ? static_cast<int>(order.shards.size())
                                 : order.same_node;
  for (int i = 0; i < limit; ++i) {
    const int shard = order.shards[static_cast<std::size_t>(i)];
    Shard& s = shards_[static_cast<std::size_t>(shard)];
    std::lock_guard lock(s.mutex);
    if (s.items.empty()) {
      // A foreign probe that comes up empty is a failed steal; the home
      // shard being empty is just an idle scan.
      if constexpr (obs::stats_compiled_in) {
        if (sc != nullptr && i != 0) {
          sc->steal_attempts.fetch_add(1, std::memory_order_relaxed);
          sc->steal_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      continue;
    }
    if (i == 0) {
      // Home shard drains FIFO (oldest ticket first keeps queue waits
      // honest); thieves take from the back to reduce interference.
      *out = s.items.front();
      s.items.pop_front();
    } else {
      if constexpr (obs::stats_compiled_in) {
        if (sc != nullptr)
          sc->steal_attempts.fetch_add(1, std::memory_order_relaxed);
      }
      *out = s.items.back();
      s.items.pop_back();
    }
    const std::int64_t after =
        queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
    pop->shard = shard;
    pop->stolen = (i != 0);
    pop->cross_node = (i >= order.same_node);
    pop->depth_after = after;
    return true;
  }
  return false;
}

void PersistentPool::run_item(const Item& item, const PopInfo& pop,
                              int runner_rank, SchedCounters* sc) {
  const double wait = now_seconds() - item.submit_seconds;
  TicketInfo info;
  info.queue_wait_seconds = wait > 0 ? wait : 0.0;
  info.runner_rank = runner_rank;
  info.shard = pop.shard;
  info.stolen = pop.stolen;
  info.inline_overflow = false;
  info.queue_depth = pop.depth_after;

  std::uint64_t t0 = 0;
  if constexpr (obs::stats_compiled_in) {
    if (sc != nullptr) t0 = now_ns();
  }
  Submission& sub = *item.sub;
  try {
    sub.source->run_ticket(item.ticket, info);
  } catch (...) {
    std::lock_guard lock(sub.error_mutex);
    if (!sub.failed.exchange(true, std::memory_order_acq_rel))
      sub.first_error = std::current_exception();
  }
  if constexpr (obs::stats_compiled_in) {
    if (sc != nullptr) {
      const std::uint64_t dt = now_ns() - t0;
      sc->busy_ns.fetch_add(dt, std::memory_order_relaxed);
      sc->run.fetch_add(1, std::memory_order_relaxed);
      if (pop.stolen) {
        sc->stolen.fetch_add(1, std::memory_order_relaxed);
        (pop.cross_node ? sc->stolen_cross_node : sc->stolen_same_node)
            .fetch_add(1, std::memory_order_relaxed);
      }
      // Online weight refinement: pool workers report (class, busy ns)
      // per ticket so Topology can replace discovery-seed weights with
      // measured throughput ratios. Helping callers are unpinned and
      // unattributable, so they don't feed the estimate.
      if (runner_rank >= 0) {
        const Topology& topo = Topology::get();
        topo.note_ticket(topo.class_of_rank(runner_rank), dt);
      }
    }
  }
  finish_ticket(sub);
}

void PersistentPool::finish_ticket(Submission& sub) {
  // After this decrement reaches zero the submission may be destroyed by
  // the waiting caller, so `sub` must not be touched again. The notify
  // goes through pool-lifetime state only.
  if (sub.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard lock(done_mutex_); }
    done_cv_.notify_all();
  }
}

void PersistentPool::execute(TaskSource& source, std::int64_t n_tickets) {
  if (n_tickets <= 0) return;
  Submission sub;
  sub.source = &source;
  sub.remaining.store(n_tickets, std::memory_order_relaxed);

  // Enqueue under the admission limit; overflow runs inline below. The
  // limit check is advisory (concurrent submitters may briefly overshoot
  // by a few tickets) — it bounds memory, not exact occupancy.
  const std::int64_t depth = queue_depth();
  const double submit_t = now_seconds();
  std::int64_t inline_from = n_tickets;
  std::int64_t enqueued = 0;
  for (std::int64_t t = 0; t < n_tickets; ++t) {
    if (queued_.load(std::memory_order_relaxed) >= depth) {
      inline_from = t;
      break;
    }
    Shard& s = shards_[static_cast<std::size_t>(
        submit_cursor_.fetch_add(1, std::memory_order_relaxed) % kShards)];
    {
      std::lock_guard lock(s.mutex);
      s.items.push_back({&sub, t, submit_t});
    }
    queued_.fetch_add(1, std::memory_order_relaxed);
    ++enqueued;
  }
  if (enqueued > 0 && target_.load(std::memory_order_acquire) > 0) wake_workers();

  if constexpr (obs::stats_compiled_in) {
    submissions_.fetch_add(1, std::memory_order_relaxed);
    enqueued_total_.fetch_add(static_cast<std::uint64_t>(enqueued),
                              std::memory_order_relaxed);
    inline_total_.fetch_add(static_cast<std::uint64_t>(n_tickets - inline_from),
                            std::memory_order_relaxed);
  }

  // Overflow tickets first (the queue rejected them; the caller owes them
  // cycles before helping with anything else), then help drain.
  for (std::int64_t t = inline_from; t < n_tickets; ++t) {
    TicketInfo info;
    info.inline_overflow = true;
    std::uint64_t t0 = 0;
    if constexpr (obs::stats_compiled_in) t0 = now_ns();
    try {
      source.run_ticket(t, info);
    } catch (...) {
      std::lock_guard lock(sub.error_mutex);
      if (!sub.failed.exchange(true, std::memory_order_acq_rel))
        sub.first_error = std::current_exception();
    }
    if constexpr (obs::stats_compiled_in) {
      caller_counters_.busy_ns.fetch_add(now_ns() - t0,
                                         std::memory_order_relaxed);
      caller_counters_.run.fetch_add(1, std::memory_order_relaxed);
      caller_counters_.inline_run.fetch_add(1, std::memory_order_relaxed);
    }
    finish_ticket(sub);
  }

  // Help: run whatever is poppable (any submission's tickets) until ours
  // completes. When nothing is poppable every one of our tickets is
  // already claimed — by a worker or by this loop — so blocking is safe
  // even with zero workers. Callers always scan every shard (same-node
  // first for the locality attribution): their full sweep is what keeps
  // cross-node deferral in the workers from stranding queued work.
  const Topology& topo = Topology::get();
  const StealOrder order = build_steal_order(topo, 0, topo.current_node());
  SpinWait spinner;
  while (sub.remaining.load(std::memory_order_acquire) != 0) {
    Item item;
    PopInfo pop;
    if (try_pop(order, /*allow_remote=*/true, &item, &pop, &caller_counters_)) {
      run_item(item, pop, /*runner_rank=*/-1, &caller_counters_);
      spinner = SpinWait();
      continue;
    }
    if (!spinner.spin()) {
      if constexpr (obs::stats_compiled_in)
        caller_counters_.blocks.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock lock(done_mutex_);
      done_cv_.wait(lock, [&] {
        return sub.remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }

  if (sub.failed.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard lock(sub.error_mutex);
      err = sub.first_error;
    }
    if (err) std::rethrow_exception(err);
  }
}

void PersistentPool::worker_loop(int rank) {
  name_batch_thread(rank);
  obs::telemetry_register_thread("armgemm-pw" + std::to_string(rank));
  SchedCounters& sc = slot(rank);
  const int home = rank % kShards;

  // Topology: pin (opt-in), then derive the node-ordered steal scan. The
  // snapshot pointer is re-checked each iteration so a test's
  // Topology::refresh() under emulation knobs re-sorts the scan without
  // restarting the pool.
  const Topology* topo = &Topology::get();
  if (affinity_enabled()) topo->pin_current_thread_to_rank(rank);
  StealOrder order = build_steal_order(*topo, home, topo->node_of_rank(rank));
  const auto steal_threshold = [] {
    const std::int64_t v = cross_node_steal_threshold();
    return v > 0 ? v : 0;
  };
  std::int64_t failed_local_sweeps = 0;

  Item item;
  PopInfo pop;
  // Idle time accrues from the end of one ticket to the start of the
  // next (scan + spin + block); busy time is measured inside run_item.
  std::uint64_t idle_start = 0;
  if constexpr (obs::stats_compiled_in) idle_start = now_ns();
  const auto note_idle_end = [&] {
    if constexpr (obs::stats_compiled_in) {
      const std::uint64_t t = now_ns();
      sc.idle_ns.fetch_add(t - idle_start, std::memory_order_relaxed);
    }
  };
  const auto note_idle_begin = [&] {
    if constexpr (obs::stats_compiled_in) idle_start = now_ns();
  };
  for (;;) {
    if (rank >= target_.load(std::memory_order_acquire)) {
      note_idle_end();
      return;
    }
    if (const Topology* cur = &Topology::get(); cur != topo) {
      topo = cur;
      order = build_steal_order(*topo, home, topo->node_of_rank(rank));
      failed_local_sweeps = 0;
    }
    // Cross-node shards join the scan only after enough same-node sweeps
    // came up dry (the work really is remote, so fetch it), or trivially
    // on a single-node host where the split is vacuous.
    const bool allow_remote = topo->num_nodes() <= 1 ||
                              failed_local_sweeps >= steal_threshold();
    if (try_pop(order, allow_remote, &item, &pop, &sc)) {
      failed_local_sweeps = 0;
      note_idle_end();
      run_item(item, pop, rank, &sc);
      note_idle_begin();
      continue;
    }
    ++failed_local_sweeps;
    // Idle: snapshot the work epoch, re-check the queue (an item pushed
    // before the snapshot is either visible in a shard or its epoch bump
    // is ahead of the snapshot), then spin-wait and finally block. The
    // re-check is always a full scan: a worker must never sleep while
    // any shard — local or remote — still holds work.
    const std::uint64_t seen = work_epoch_.load(std::memory_order_acquire);
    if (try_pop(order, /*allow_remote=*/true, &item, &pop, &sc)) {
      failed_local_sweeps = 0;
      note_idle_end();
      run_item(item, pop, rank, &sc);
      note_idle_begin();
      continue;
    }
    const auto wake = [&] {
      return work_epoch_.load(std::memory_order_acquire) != seen ||
             rank >= target_.load(std::memory_order_acquire);
    };
    SpinWait spinner;
    bool woken = false;
    while (spinner.spin()) {
      if (wake()) {
        woken = true;
        break;
      }
    }
    if (!woken) {
      if constexpr (obs::stats_compiled_in)
        sc.blocks.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock lock(work_mutex_);
      work_cv_.wait(lock, wake);
    }
  }
}

obs::SchedulerStats PersistentPool::stats() const {
  obs::SchedulerStats out;
  out.workers = target_.load(std::memory_order_acquire);
  out.queued = queued_.load(std::memory_order_acquire);
  out.submissions = submissions_.load(std::memory_order_relaxed);
  out.tickets_enqueued = enqueued_total_.load(std::memory_order_relaxed);
  out.tickets_inline = inline_total_.load(std::memory_order_relaxed);

  const auto read_lane = [](const SchedCounters& sc, const std::string& name) {
    obs::SchedulerWorkerStats w;
    w.name = name;
    w.tickets_run = sc.run.load(std::memory_order_relaxed);
    w.tickets_stolen = sc.stolen.load(std::memory_order_relaxed);
    w.steals_local = sc.stolen_same_node.load(std::memory_order_relaxed);
    w.steals_remote = sc.stolen_cross_node.load(std::memory_order_relaxed);
    w.tickets_inline = sc.inline_run.load(std::memory_order_relaxed);
    w.steal_attempts = sc.steal_attempts.load(std::memory_order_relaxed);
    w.steal_failures = sc.steal_failures.load(std::memory_order_relaxed);
    w.blocks = sc.blocks.load(std::memory_order_relaxed);
    w.busy_seconds =
        static_cast<double>(sc.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    w.idle_seconds =
        static_cast<double>(sc.idle_ns.load(std::memory_order_relaxed)) * 1e-9;
    return w;
  };

  int lanes = peak_workers_.load(std::memory_order_relaxed);
  if (lanes > kMaxCounterSlots) lanes = kMaxCounterSlots;
  out.per_worker.reserve(static_cast<std::size_t>(lanes) + 1);
  for (int r = 0; r < lanes; ++r)
    out.per_worker.push_back(
        read_lane(worker_counters_[r], "armgemm-pw" + std::to_string(r)));
  out.per_worker.push_back(read_lane(caller_counters_, "callers"));
  return out;
}

void PersistentPool::reset_stats() {
  const auto zero = [](SchedCounters& sc) {
    sc.run.store(0, std::memory_order_relaxed);
    sc.stolen.store(0, std::memory_order_relaxed);
    sc.stolen_same_node.store(0, std::memory_order_relaxed);
    sc.stolen_cross_node.store(0, std::memory_order_relaxed);
    sc.inline_run.store(0, std::memory_order_relaxed);
    sc.steal_attempts.store(0, std::memory_order_relaxed);
    sc.steal_failures.store(0, std::memory_order_relaxed);
    sc.blocks.store(0, std::memory_order_relaxed);
    sc.busy_ns.store(0, std::memory_order_relaxed);
    sc.idle_ns.store(0, std::memory_order_relaxed);
  };
  for (SchedCounters& sc : worker_counters_) zero(sc);
  zero(caller_counters_);
  submissions_.store(0, std::memory_order_relaxed);
  enqueued_total_.store(0, std::memory_order_relaxed);
  inline_total_.store(0, std::memory_order_relaxed);
}

}  // namespace ag
