// Host topology: the core-class (big.LITTLE cluster) and NUMA-node map
// the heterogeneity-aware runtime schedules against.
//
// The paper's Eqs. 19-20 size blocks for the symmetric X-Gene; production
// ARM parts are frequently asymmetric (big.LITTLE) and multi-node
// (multi-socket Graviton). This module answers, for every worker rank:
// which core class is it on (and how fast is that class relative to the
// others), and which NUMA node does its memory live on. Consumers:
//
//   * core/schedule sizes per-rank ticket spans proportionally to class
//     weight (big cores claim more mc blocks up front, stealing evens the
//     tail), keeping the block grid itself thread-invariant so results
//     stay bitwise identical;
//   * threading/persistent_pool orders its steal scan same-node-first and
//     optionally pins workers (ARMGEMM_AFFINITY);
//   * core/panel_cache keys per-node packed-B replicas;
//   * src/tune derives per-class mc so a LITTLE cluster's blocking fits
//     its smaller L2 (the Catalán et al. asymmetric-blocking result).
//
// Discovery, in precedence order:
//
//   1. ARMGEMM_CPU_CLASSES ("<count>x<weight>,..." e.g. "4x2.0,4x1.0")
//      overrides the class map outright — the sim/CI knob that emulates
//      an asymmetric machine on a symmetric runner. ARMGEMM_NUMA_NODES
//      likewise overrides the node count (cores split contiguously).
//   2. sysfs: per-cpu cpu_capacity (arm64) or cpuinfo_max_freq groups
//      cores into classes with capacity-ratio seed weights; node
//      membership comes from /sys/devices/system/node/node*/cpulist.
//      On asymmetric discoveries the seeds are refined by a short
//      obs/calibrate FMA probe pinned to one core per class.
//   3. Flat fallback: every core one class of weight 1, one node.
//
// Class weights start from the discovery seed and are refined online:
// the persistent pool reports per-class (tickets run, busy ns), and once
// every class has a stable sample the measured throughput ratio replaces
// the seed. The snapshot itself is immutable (lock-free reads from the
// schedule hot path); refinement counters are relaxed atomics beside it.
//
// Layering: threading links obs (for the stats-source registration and
// the calibration probes); obs never links back.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/runtime_introspect.hpp"

namespace ag {

/// One parsed "<count>x<weight>" group of an ARMGEMM_CPU_CLASSES spec.
struct TopoClassSpec {
  int cpus = 0;
  double weight = 1.0;
};

/// Parses an ARMGEMM_CPU_CLASSES spec ("4x2.0,4x1.0"; the "x<weight>"
/// part is optional and defaults to 1.0). Returns the groups in spec
/// order, or an empty vector with *error set when the spec is malformed
/// (zero/negative counts, non-positive weights, trailing garbage).
std::vector<TopoClassSpec> parse_cpu_classes(const std::string& spec,
                                             std::string* error = nullptr);

class Topology {
 public:
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// The current process-wide snapshot (built from the knobs/sysfs on
  /// first use; immortal). Hot-path reads are one atomic pointer load.
  static const Topology& get();

  /// Rebuilds the snapshot from the current knob values (tests change
  /// ARMGEMM_CPU_CLASSES / ARMGEMM_NUMA_NODES via the setters, then
  /// refresh). The old snapshot leaks — in-flight readers may still hold
  /// it. Online refinement counters restart from the new seeds.
  static void refresh();

  int num_cpus() const { return num_cpus_; }
  int num_nodes() const { return num_nodes_; }
  int num_classes() const { return static_cast<int>(classes_.size()); }
  /// obs::kTopologySource* code: 0 flat, 1 sysfs, 2 env override.
  int source() const { return source_; }
  bool asymmetric() const { return num_classes() > 1; }

  int class_of_cpu(int cpu) const;
  int node_of_cpu(int cpu) const;

  /// Worker ranks wrap around the cpu list (rank r lives on cpu r mod
  /// num_cpus, the cpu ARMGEMM_AFFINITY would pin it to).
  int cpu_of_rank(int rank) const {
    return rank >= 0 ? rank % num_cpus_ : 0;
  }
  int class_of_rank(int rank) const { return class_of_cpu(cpu_of_rank(rank)); }
  int node_of_rank(int rank) const { return node_of_cpu(cpu_of_rank(rank)); }

  /// Relative throughput of `cls`: the refined online estimate once every
  /// class has a stable ticket sample, else the discovery seed. In
  /// (0, 1] after normalization (the fastest class is 1).
  double class_weight(int cls) const;
  double class_weight_seed(int cls) const;
  int class_cpus(int cls) const;

  /// The per-rank weight vector a gang of `nthreads` ranks schedules
  /// with (index r = class_weight(class_of_rank(r))).
  std::vector<double> rank_weights(int nthreads) const;

  /// Online refinement feed: the persistent pool reports each ticket's
  /// (runner class, busy ns). Relaxed atomics; compiled out with stats.
  void note_ticket(int cls, std::uint64_t busy_ns) const;

  /// NUMA node of the calling thread's current cpu (sched_getcpu; node 0
  /// when the syscall is unavailable or the cpu is out of range).
  int current_node() const;

  /// Pins the calling thread to cpu_of_rank(rank) when the host supports
  /// it. Returns true on success. Only called under ARMGEMM_AFFINITY=1.
  bool pin_current_thread_to_rank(int rank) const;

  /// Snapshot for the obs exposition (registered as the process-wide
  /// topology stats source).
  obs::TopologyStats stats() const;

 private:
  Topology() = default;

  struct ClassInfo {
    int cpus = 0;
    double weight_seed = 1.0;
  };

  /// Online per-class refinement counters (relaxed; written by pool
  /// workers on ticket granularity).
  struct alignas(64) ClassCounters {
    std::atomic<std::uint64_t> tickets{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  static Topology* build();

  /// True once every class accumulated enough tickets that the measured
  /// throughput ratio is a better weight than the seed.
  bool refined() const;

  int num_cpus_ = 1;
  int num_nodes_ = 1;
  int source_ = 0;
  std::vector<ClassInfo> classes_;
  std::vector<int> cpu_class_;  // cpu -> class index
  std::vector<int> cpu_node_;   // cpu -> node index
  std::unique_ptr<ClassCounters[]> counters_;
};

/// Convenience accessor mirroring Topology::get().
inline const Topology& topology() { return Topology::get(); }

}  // namespace ag
