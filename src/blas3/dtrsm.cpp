#include <algorithm>

#include "blas/reference_blas3.hpp"
#include "blas3/blas3.hpp"
#include "common/check.hpp"
#include "core/gemm.hpp"

namespace ag {
namespace {

using index_t = std::int64_t;

struct OpBlock {
  const double* ptr;
  Trans trans;
};
inline OpBlock op_block(Trans trans, const double* a, index_t lda, index_t i0, index_t j0) {
  if (trans == Trans::NoTrans) return {a + i0 + j0 * lda, Trans::NoTrans};
  return {a + j0 + i0 * lda, Trans::Trans};
}

}  // namespace

void dtrsm(Side side, Uplo uplo, Trans trans, Diag diag, index_t m, index_t n, double alpha,
           const double* a, index_t lda, double* b, index_t ldb, const Context& ctx) {
  AG_CHECK(m >= 0 && n >= 0);
  const index_t na = side == Side::Left ? m : n;
  AG_CHECK(lda >= std::max<index_t>(1, na));
  AG_CHECK(ldb >= std::max<index_t>(1, m));
  if (m == 0 || n == 0) return;

  constexpr index_t nb = blas3_detail::kBlock;
  const bool eff_lower = (uplo == Uplo::Lower) != (trans == Trans::Trans);

  // Scale B by alpha once; block substitutions then work with alpha = 1.
  if (alpha != 1.0) {
    for (index_t j = 0; j < n; ++j) {
      double* col = b + j * ldb;
      for (index_t i = 0; i < m; ++i) col[i] *= alpha;
    }
  }

  if (side == Side::Left) {
    // Solve op(A) X = B block-row-wise: eff-lower forward (top-down),
    // eff-upper backward. X(bi,:) = inv(op(A)(bi,bi)) *
    //   (B(bi,:) - sum_solved op(A)(bi,bj) X(bj,:)).
    const index_t blocks = (m + nb - 1) / nb;
    for (index_t step = 0; step < blocks; ++step) {
      const index_t blk = eff_lower ? step : blocks - 1 - step;
      const index_t i0 = blk * nb;
      const index_t ib = std::min(nb, m - i0);
      const index_t j_begin = eff_lower ? 0 : i0 + ib;
      const index_t j_end = eff_lower ? i0 : m;
      for (index_t j0 = j_begin; j0 < j_end; j0 += nb) {
        const index_t jb = std::min(nb, j_end - j0);
        const OpBlock ob = op_block(trans, a, lda, i0, j0);
        dgemm(Layout::ColMajor, ob.trans, Trans::NoTrans, ib, n, jb, -1.0, ob.ptr, lda, b + j0,
              ldb, 1.0, b + i0, ldb, ctx);
      }
      reference_dtrsm(Side::Left, uplo, trans, diag, ib, n, 1.0, a + i0 + i0 * lda, lda,
                      b + i0, ldb);
    }
  } else {
    // Solve X op(A) = B block-column-wise: eff-lower backward
    // (right-to-left: column bj depends on solved columns bk > bj),
    // eff-upper forward.
    const index_t blocks = (n + nb - 1) / nb;
    for (index_t step = 0; step < blocks; ++step) {
      const index_t blk = eff_lower ? blocks - 1 - step : step;
      const index_t j0 = blk * nb;
      const index_t jb = std::min(nb, n - j0);
      const index_t k_begin = eff_lower ? j0 + jb : 0;
      const index_t k_end = eff_lower ? n : j0;
      for (index_t k0 = k_begin; k0 < k_end; k0 += nb) {
        const index_t kb = std::min(nb, k_end - k0);
        const OpBlock ob = op_block(trans, a, lda, k0, j0);
        dgemm(Layout::ColMajor, Trans::NoTrans, ob.trans, m, jb, kb, -1.0, b + k0 * ldb, ldb,
              ob.ptr, lda, 1.0, b + j0 * ldb, ldb, ctx);
      }
      reference_dtrsm(Side::Right, uplo, trans, diag, m, jb, 1.0, a + j0 + j0 * lda, lda,
                      b + j0 * ldb, ldb);
    }
  }
}

}  // namespace ag
