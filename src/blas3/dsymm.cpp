#include <algorithm>

#include "blas3/blas3.hpp"
#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "core/gemm.hpp"

namespace ag {
namespace {

using index_t = std::int64_t;

// Materialise the (i0, j0) block of the symmetric matrix A (only the
// `uplo` triangle stored) into a dense ib x jb buffer. Blocks are
// diagonal-aligned, so a block is either entirely stored, entirely
// mirrored, or the diagonal block (mixed).
void copy_sym_block(Uplo uplo, const double* a, index_t lda, index_t i0, index_t j0,
                    index_t ib, index_t jb, double* dst) {
  for (index_t j = 0; j < jb; ++j) {
    for (index_t i = 0; i < ib; ++i) {
      const index_t r = i0 + i, c = j0 + j;
      const bool stored = uplo == Uplo::Lower ? r >= c : r <= c;
      dst[i + j * ib] = stored ? a[r + c * lda] : a[c + r * lda];
    }
  }
}

}  // namespace

void dsymm(Side side, Uplo uplo, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* b, index_t ldb, double beta, double* c, index_t ldc,
           const Context& ctx) {
  AG_CHECK(m >= 0 && n >= 0);
  const index_t na = side == Side::Left ? m : n;  // A is na x na
  AG_CHECK(lda >= std::max<index_t>(1, na));
  AG_CHECK(ldb >= std::max<index_t>(1, m));
  AG_CHECK(ldc >= std::max<index_t>(1, m));
  if (m == 0 || n == 0) return;

  // Scale C once; every block product then accumulates with beta = 1.
  for (index_t j = 0; j < n; ++j) {
    double* col = c + j * ldc;
    if (beta == 0.0)
      std::fill(col, col + m, 0.0);
    else if (beta != 1.0)
      for (index_t i = 0; i < m; ++i) col[i] *= beta;
  }
  if (alpha == 0.0) return;

  constexpr index_t nb = blas3_detail::kBlock;
  AlignedBuffer<double> block(static_cast<std::size_t>(nb * nb));

  if (side == Side::Left) {
    // C(i0,:) += alpha * sum_k Asym(i0,k0) * B(k0,:).
    for (index_t i0 = 0; i0 < m; i0 += nb) {
      const index_t ib = std::min(nb, m - i0);
      for (index_t k0 = 0; k0 < m; k0 += nb) {
        const index_t kb = std::min(nb, m - k0);
        copy_sym_block(uplo, a, lda, i0, k0, ib, kb, block.data());
        dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, ib, n, kb, alpha, block.data(),
              ib, b + k0, ldb, 1.0, c + i0, ldc, ctx);
      }
    }
  } else {
    // C(:,j0) += alpha * sum_k B(:,k0) * Asym(k0,j0).
    for (index_t j0 = 0; j0 < n; j0 += nb) {
      const index_t jb = std::min(nb, n - j0);
      for (index_t k0 = 0; k0 < n; k0 += nb) {
        const index_t kb = std::min(nb, n - k0);
        copy_sym_block(uplo, a, lda, k0, j0, kb, jb, block.data());
        dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, jb, kb, alpha, b + k0 * ldb,
              ldb, block.data(), kb, 1.0, c + j0 * ldc, ldc, ctx);
      }
    }
  }
}

}  // namespace ag
