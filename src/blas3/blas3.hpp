// GEMM-based Level-3 BLAS on top of the optimized dgemm.
//
// The paper motivates DGEMM as the workhorse of Level-3 BLAS ("the most
// commonly used matrix-matrix computations can be implemented as a
// general matrix multiplication"). This module realises that layering in
// the classical Kågström GEMM-based style: each routine partitions its
// matrices into diagonal-aligned square blocks, performs the dominant
// off-diagonal work through ag::dgemm (hence through the paper's GEBP
// kernel), and handles the small diagonal blocks with proven reference
// kernels. Column-major storage, full side/uplo/trans/diag coverage.
#pragma once

#include <cstdint>

#include "blas/gemm_types.hpp"
#include "core/context.hpp"

namespace ag {

/// C := alpha*op(A)*op(A)^T + beta*C (only the `uplo` triangle of C).
void dsyrk(Uplo uplo, Trans trans, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t lda, double beta, double* c, std::int64_t ldc,
           const Context& ctx = Context::default_context());

/// C := alpha*A*B + beta*C (Left) or alpha*B*A + beta*C (Right), A
/// symmetric with the `uplo` triangle stored; C is m x n.
void dsymm(Side side, Uplo uplo, std::int64_t m, std::int64_t n, double alpha, const double* a,
           std::int64_t lda, const double* b, std::int64_t ldb, double beta, double* c,
           std::int64_t ldc, const Context& ctx = Context::default_context());

/// B := alpha*op(A)*B (Left) or alpha*B*op(A) (Right), A triangular.
void dtrmm(Side side, Uplo uplo, Trans trans, Diag diag, std::int64_t m, std::int64_t n,
           double alpha, const double* a, std::int64_t lda, double* b, std::int64_t ldb,
           const Context& ctx = Context::default_context());

/// Solve op(A)*X = alpha*B (Left) or X*op(A) = alpha*B (Right); X
/// overwrites B.
void dtrsm(Side side, Uplo uplo, Trans trans, Diag diag, std::int64_t m, std::int64_t n,
           double alpha, const double* a, std::int64_t lda, double* b, std::int64_t ldb,
           const Context& ctx = Context::default_context());

namespace blas3_detail {
/// Diagonal-aligned block width used by the blocked Level-3 routines.
inline constexpr std::int64_t kBlock = 96;
}  // namespace blas3_detail

}  // namespace ag
