#include <algorithm>

#include "blas/reference_blas3.hpp"
#include "blas3/blas3.hpp"
#include "common/check.hpp"
#include "core/gemm.hpp"

namespace ag {
namespace {

using index_t = std::int64_t;

// Pointer + trans flag for the (bi, bj) off-diagonal block of op(A);
// blocks are diagonal-aligned so each lies wholly inside the stored
// triangle.
struct OpBlock {
  const double* ptr;
  Trans trans;
};
inline OpBlock op_block(Trans trans, const double* a, index_t lda, index_t i0, index_t j0) {
  if (trans == Trans::NoTrans) return {a + i0 + j0 * lda, Trans::NoTrans};
  return {a + j0 + i0 * lda, Trans::Trans};
}

}  // namespace

void dtrmm(Side side, Uplo uplo, Trans trans, Diag diag, index_t m, index_t n, double alpha,
           const double* a, index_t lda, double* b, index_t ldb, const Context& ctx) {
  AG_CHECK(m >= 0 && n >= 0);
  const index_t na = side == Side::Left ? m : n;
  AG_CHECK(lda >= std::max<index_t>(1, na));
  AG_CHECK(ldb >= std::max<index_t>(1, m));
  if (m == 0 || n == 0) return;

  constexpr index_t nb = blas3_detail::kBlock;
  // Effective orientation of op(A): transposing flips the triangle.
  const bool eff_lower = (uplo == Uplo::Lower) != (trans == Trans::Trans);

  if (side == Side::Left) {
    // B(bi,:) := alpha*[op(A)(bi,bi)*B(bi,:) + sum op(A)(bi,bj)*B(bj,:)].
    // For eff-lower the sum runs over bj < bi (process bottom-up so the
    // B(bj,:) operands are still unmodified); eff-upper mirrors.
    const index_t blocks = (m + nb - 1) / nb;
    for (index_t step = 0; step < blocks; ++step) {
      const index_t blk = eff_lower ? blocks - 1 - step : step;
      const index_t i0 = blk * nb;
      const index_t ib = std::min(nb, m - i0);
      // Diagonal part first: uses only the old B(bi,:).
      reference_dtrmm(Side::Left, uplo, trans, diag, ib, n, alpha, a + i0 + i0 * lda, lda,
                      b + i0, ldb);
      const index_t j_begin = eff_lower ? 0 : i0 + ib;
      const index_t j_end = eff_lower ? i0 : m;
      for (index_t j0 = j_begin; j0 < j_end; j0 += nb) {
        const index_t jb = std::min(nb, j_end - j0);
        const OpBlock ob = op_block(trans, a, lda, i0, j0);
        dgemm(Layout::ColMajor, ob.trans, Trans::NoTrans, ib, n, jb, alpha, ob.ptr, lda,
              b + j0, ldb, 1.0, b + i0, ldb, ctx);
      }
    }
  } else {
    // B(:,bj) := alpha*[B(:,bj)*op(A)(bj,bj) + sum B(:,bk)*op(A)(bk,bj)].
    // For eff-lower the sum runs over bk > bj (process left-to-right);
    // eff-upper mirrors (right-to-left).
    const index_t blocks = (n + nb - 1) / nb;
    for (index_t step = 0; step < blocks; ++step) {
      const index_t blk = eff_lower ? step : blocks - 1 - step;
      const index_t j0 = blk * nb;
      const index_t jb = std::min(nb, n - j0);
      reference_dtrmm(Side::Right, uplo, trans, diag, m, jb, alpha, a + j0 + j0 * lda, lda,
                      b + j0 * ldb, ldb);
      const index_t k_begin = eff_lower ? j0 + jb : 0;
      const index_t k_end = eff_lower ? n : j0;
      for (index_t k0 = k_begin; k0 < k_end; k0 += nb) {
        const index_t kb = std::min(nb, k_end - k0);
        const OpBlock ob = op_block(trans, a, lda, k0, j0);
        dgemm(Layout::ColMajor, Trans::NoTrans, ob.trans, m, jb, kb, alpha, b + k0 * ldb, ldb,
              ob.ptr, lda, 1.0, b + j0 * ldb, ldb, ctx);
      }
    }
  }
}

}  // namespace ag
