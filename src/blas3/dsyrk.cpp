#include <algorithm>

#include "blas/reference_blas3.hpp"
#include "blas3/blas3.hpp"
#include "common/check.hpp"
#include "core/gemm.hpp"

namespace ag {

void dsyrk(Uplo uplo, Trans trans, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t lda, double beta, double* c, std::int64_t ldc,
           const Context& ctx) {
  using index_t = std::int64_t;
  AG_CHECK(n >= 0 && k >= 0);
  AG_CHECK(ldc >= std::max<index_t>(1, n));
  AG_CHECK(lda >= std::max<index_t>(1, trans == Trans::NoTrans ? n : k));
  if (n == 0) return;

  constexpr index_t nb = blas3_detail::kBlock;
  // op(A) row-block bi as a dgemm operand: for NoTrans the rows bi of A,
  // for Trans the columns bi of A (passed with Trans).
  auto block_ptr = [&](index_t i0) {
    return trans == Trans::NoTrans ? a + i0 : a + i0 * lda;
  };

  for (index_t j0 = 0; j0 < n; j0 += nb) {
    const index_t jb = std::min(nb, n - j0);
    // Diagonal block: reference syrk (handles the triangle and beta).
    reference_dsyrk(uplo, trans, jb, k, alpha, block_ptr(j0), lda, beta, c + j0 + j0 * ldc,
                    ldc);
    // Off-diagonal blocks of the stored triangle: plain dgemm.
    const index_t i_begin = uplo == Uplo::Lower ? j0 + jb : 0;
    const index_t i_end = uplo == Uplo::Lower ? n : j0;
    for (index_t i0 = i_begin; i0 < i_end; i0 += nb) {
      const index_t ib = std::min(nb, i_end - i0);
      dgemm(Layout::ColMajor, trans == Trans::NoTrans ? Trans::NoTrans : Trans::Trans,
            trans == Trans::NoTrans ? Trans::Trans : Trans::NoTrans, ib, jb, k, alpha,
            block_ptr(i0), lda, block_ptr(j0), lda, beta, c + i0 + j0 * ldc, ldc, ctx);
    }
  }
}

}  // namespace ag
