// Closed-loop autotuner (src/tune): the persistent cache file's failure
// modes (corruption, wrong schema, another machine's fingerprint — every
// one a cold start, never a crash), concurrent first-key resolution
// sharing a single immortal winner, drift-triggered invalidation, and
// the determinism contract — a tuned call is bitwise identical to a
// pinned call with the same configuration, and mode "off" is bitwise
// the pre-tuner default path.
//
// The probe runner is a deterministic fake (tune::set_probe_runner) and
// the machine model is pinned (tune::set_machine_model), so nothing here
// times real kernels; suites stay fast and TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/knobs.hpp"
#include "core/gemm.hpp"
#include "core/tuning.hpp"
#include "obs/telemetry.hpp"
#include "scoped_knobs.hpp"
#include "tune/cache_file.hpp"
#include "tune/tune.hpp"

namespace {

using ag::tune::CacheLoadStatus;
using ag::tune::HostFingerprint;
using ag::tune::Precision;
using ag::tune::TuneCacheData;
using ag::tune::TunedConfig;
using ag::tune::TuneSource;

// Deterministic probe: prefers larger kc a little, so ranking is stable
// and never depends on wall time.
double fake_probe(const ag::tune::ProbeRequest& req) {
  return 5.0 + 0.001 * static_cast<double>(req.kc % 1024);
}

HostFingerprint test_host() { return ag::tune::host_fingerprint(10.0, 1e-10, 1e-9); }

TuneCacheData sample_cache() {
  TuneCacheData data;
  data.fingerprint = test_host();
  data.small_mnk = 8;
  data.prea = 1024;
  data.preb = 24576;
  TunedConfig e;
  e.precision = Precision::kF64;
  e.kind = static_cast<int>(ag::obs::ShapeKind::kSquare);
  e.decade = 8;
  const ag::Microkernel* kern = ag::find_best_microkernel({8, 6});
  e.kernel = kern;
  e.kernel_name = kern != nullptr ? kern->name : "";
  e.mr = 8;
  e.nr = 6;
  e.kc = 240;
  e.mc = 64;
  e.nc = 1920;
  e.mc_mt = 32;
  e.nc_mt = 960;
  e.source = TuneSource::kProbed;
  e.gflops = 7.5;
  data.entries.push_back(e);
  return data;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  os << text;
}

// Pins mode/model/probe runner for the tuner-level tests and resets the
// key table so each test starts from its own cold state. Knob guards
// (small-mnk, prefetch) pin the process knobs, so the fake probe session
// cannot leak a tuned crossover or prefetch distance into other tests.
struct TunerFixture {
  agtest::ScopedSmallMnk small{0};
  agtest::ScopedPrefetch prefetch{1024, 24576};

  TunerFixture() {
    ag::set_tune_mode(ag::kTuneModeOn);
    ag::set_tune_cache_path("");
    ag::tune::set_machine_model(10.0, 1e-10, 1e-9);
    ag::tune::set_probe_runner(&fake_probe);
    ag::tune::force_retune();
  }
  ~TunerFixture() {
    ag::tune::force_retune();
    ag::set_tune_mode(ag::kTuneModeOn);
  }
};

// ---- cache file ----------------------------------------------------------

TEST(TuneCache, RoundTripPreservesEntries) {
  const TuneCacheData data = sample_cache();
  const std::string text = ag::tune::render_cache_json(data);

  TuneCacheData back;
  std::uint64_t rejected = 0;
  ASSERT_EQ(ag::tune::parse_cache_json(text, test_host(), &back, &rejected),
            CacheLoadStatus::kOk);
  EXPECT_EQ(rejected, 0u);
  EXPECT_EQ(back.small_mnk, 8);
  EXPECT_EQ(back.prea, 1024);
  EXPECT_EQ(back.preb, 24576);
  ASSERT_EQ(back.entries.size(), 1u);
  const TunedConfig& e = back.entries[0];
  EXPECT_EQ(e.precision, Precision::kF64);
  EXPECT_EQ(e.kind, static_cast<int>(ag::obs::ShapeKind::kSquare));
  EXPECT_EQ(e.decade, 8);
  EXPECT_EQ(e.kc, 240);
  EXPECT_EQ(e.mc, 64);
  EXPECT_EQ(e.nc, 1920);
  EXPECT_EQ(e.mc_mt, 32);
  EXPECT_EQ(e.nc_mt, 960);
  EXPECT_EQ(e.source, TuneSource::kCached);  // re-stamped on load
  EXPECT_NE(e.kernel, nullptr);
}

TEST(TuneCache, CorruptOrTruncatedFileIsAColdStart) {
  const char* bodies[] = {
      "this is not json at all",
      "{\"schema\": \"armgemm-tune/1\", \"entries\": [",  // truncated mid-array
      "",                                                 // empty file
      "{}trailing",
  };
  int i = 0;
  for (const char* body : bodies) {
    const std::string path = temp_path("tune_corrupt_" + std::to_string(i++) + ".json");
    write_text(path, body);
    TuneCacheData out;
    std::uint64_t rejected = 0;
    EXPECT_EQ(ag::tune::load_cache_file(path, test_host(), &out, &rejected),
              CacheLoadStatus::kParseError)
        << body;
    EXPECT_TRUE(out.entries.empty());
  }
}

TEST(TuneCache, MissingFileReportsMissing) {
  TuneCacheData out;
  EXPECT_EQ(ag::tune::load_cache_file(temp_path("tune_never_written.json"), test_host(),
                                      &out, nullptr),
            CacheLoadStatus::kMissing);
}

TEST(TuneCache, SchemaMismatchRejected) {
  std::string text = ag::tune::render_cache_json(sample_cache());
  const std::string tag = "armgemm-tune/1";
  text.replace(text.find(tag), tag.size(), "armgemm-tune/999");
  TuneCacheData out;
  EXPECT_EQ(ag::tune::parse_cache_json(text, test_host(), &out, nullptr),
            CacheLoadStatus::kSchemaMismatch);
  EXPECT_TRUE(out.entries.empty());
}

TEST(TuneCache, FingerprintMismatchRejected) {
  // Same text, two "different machine" readers: wrong arch string and
  // wrong logical core count. Calibration constants are deliberately not
  // gated — the quick calibration jitters by large factors, and gating
  // on it would make warm starts flaky.
  const std::string text = ag::tune::render_cache_json(sample_cache());

  HostFingerprint other_arch = test_host();
  other_arch.arch = "someother-64bit";
  HostFingerprint other_cores = test_host();
  other_cores.cores += 7;

  for (const HostFingerprint& host : {other_arch, other_cores}) {
    TuneCacheData out;
    EXPECT_EQ(ag::tune::parse_cache_json(text, host, &out, nullptr),
              CacheLoadStatus::kFingerprintMismatch);
    EXPECT_TRUE(out.entries.empty());
  }
  // The same-host reader accepts any plausible calibration delta.
  HostFingerprint jittered = test_host();
  jittered.peak_gflops *= 40.0;
  TuneCacheData ok;
  EXPECT_EQ(ag::tune::parse_cache_json(text, jittered, &ok, nullptr),
            CacheLoadStatus::kOk);
  // A non-positive recorded peak is still a broken file, not a match.
  const std::string zero_text =
      ag::tune::render_cache_json([] {
        TuneCacheData d = sample_cache();
        d.fingerprint.peak_gflops = 0;
        return d;
      }());
  TuneCacheData rejected;
  EXPECT_EQ(ag::tune::parse_cache_json(zero_text, test_host(), &rejected, nullptr),
            CacheLoadStatus::kFingerprintMismatch);
}

TEST(TuneCache, InvalidEntriesDroppedAndCounted) {
  TuneCacheData data = sample_cache();
  TunedConfig bad = data.entries[0];
  bad.kc = -8;  // impossible blocking
  data.entries.push_back(bad);
  TunedConfig unknown_kernel = data.entries[0];
  unknown_kernel.mr = 999;  // no registered 999x6 kernel in any build
  unknown_kernel.mc = 999;
  data.entries.push_back(unknown_kernel);

  TuneCacheData out;
  std::uint64_t rejected = 0;
  ASSERT_EQ(ag::tune::parse_cache_json(ag::tune::render_cache_json(data), test_host(),
                                       &out, &rejected),
            CacheLoadStatus::kOk);
  EXPECT_EQ(out.entries.size(), 1u);
  EXPECT_EQ(rejected, 2u);
}

TEST(TuneCache, WritePublishesAtomically) {
  const std::string path = temp_path("tune_write.json");
  ASSERT_TRUE(ag::tune::write_cache_file(path, sample_cache()));
  // The temp file renamed over the target: target readable, no .tmp left.
  TuneCacheData out;
  EXPECT_EQ(ag::tune::load_cache_file(path, test_host(), &out, nullptr),
            CacheLoadStatus::kOk);
  EXPECT_EQ(out.entries.size(), 1u);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

// ---- tuner resolution ----------------------------------------------------

TEST(Tune, OffModeResolvesNothing) {
  TunerFixture fx;
  ag::set_tune_mode(ag::kTuneModeOff);
  EXPECT_EQ(ag::tune::resolve(Precision::kF64, 512, 512, 512, 1), nullptr);
}

TEST(Tune, AnalyticModeNeverProbes) {
  TunerFixture fx;
  ag::set_tune_mode(ag::kTuneModeAnalytic);
  const std::uint64_t probes_before = ag::tune::stats().probes_run;
  const TunedConfig* cfg = ag::tune::resolve(Precision::kF64, 512, 512, 512, 1);
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->source, TuneSource::kAnalytic);
  EXPECT_EQ(ag::tune::stats().probes_run, probes_before);
  EXPECT_NE(cfg->kernel, nullptr);
  EXPECT_GT(cfg->kc, 0);
}

TEST(Tune, ProbedResolutionIsStableAndImmortal) {
  TunerFixture fx;
  const TunedConfig* first = ag::tune::resolve(Precision::kF64, 512, 512, 512, 1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->source, TuneSource::kProbed);
  EXPECT_GT(first->gflops, 0.0);
  // The hot path returns the same pointer forever (any thread count:
  // the key is thread-invariant, mc/nc carry the _mt variant).
  EXPECT_EQ(ag::tune::resolve(Precision::kF64, 512, 512, 512, 4), first);
  EXPECT_GE(first->mc_mt, first->mr);
  EXPECT_GE(first->nc_mt, first->nr);
  EXPECT_EQ(first->kc, first->block_sizes(8).kc);  // kc never varies
}

TEST(Tune, ConcurrentFirstResolveSharesOneWinner) {
  TunerFixture fx;
  constexpr int kThreads = 8;
  std::atomic<int> go{0};
  std::vector<const TunedConfig*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      go.fetch_add(1);
      while (go.load() < kThreads) {
      }  // line up on the cold key
      seen[static_cast<std::size_t>(i)] =
          ag::tune::resolve(Precision::kF64, 768, 768, 768, 1);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_NE(seen[0], nullptr);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0]);
}

TEST(Tune, DriftInvalidationPublishesAFreshConfig) {
  TunerFixture fx;
  const TunedConfig* before = ag::tune::resolve(Precision::kF64, 512, 512, 512, 1);
  ASSERT_NE(before, nullptr);
  const std::uint64_t invals = ag::tune::stats().invalidations;

  const ag::obs::ShapeClass sc = ag::obs::ShapeClass::classify(512, 512, 512);
  ag::obs::notify_drift_anomaly(sc.index());

  EXPECT_EQ(ag::tune::stats().invalidations, invals + 1);
  const TunedConfig* after = ag::tune::resolve(Precision::kF64, 512, 512, 512, 1);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after, before);  // re-tuned, freshly published
  // The old pointer stays readable forever (immortal by design).
  EXPECT_EQ(before->precision, Precision::kF64);
}

TEST(Tune, SaveAndReloadRoundTripsThroughStats) {
  TunerFixture fx;
  ASSERT_NE(ag::tune::resolve(Precision::kF64, 512, 512, 512, 1), nullptr);
  const std::string path = temp_path("tune_save_reload.json");
  EXPECT_EQ(ag::tune::save_cache(path), 0);

  TuneCacheData out;
  ASSERT_EQ(ag::tune::load_cache_file(path, ag::tune::host_fingerprint(10.0, 1e-10, 1e-9),
                                      &out, nullptr),
            CacheLoadStatus::kOk);
  EXPECT_GE(out.entries.size(), 1u);
  // Saving with no path configured reports failure, not a crash.
  ag::set_tune_cache_path("");
  EXPECT_EQ(ag::tune::save_cache(), -1);
}

// ---- determinism contract ------------------------------------------------

void fill(std::vector<double>* v, std::uint64_t seed) {
  std::uint64_t s = seed;
  for (double& x : *v) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<double>((s >> 11) % 1000) / 500.0 - 1.0;
  }
}

TEST(Tune, TunedCallBitwiseMatchesPinnedSameConfig) {
  TunerFixture fx;
  const std::int64_t n = 96;
  std::vector<double> a(static_cast<std::size_t>(n * n)), b(a.size());
  fill(&a, 1);
  fill(&b, 2);

  ag::Context tuned;
  tuned.set_threads(1);
  tuned.set_tunable(true);
  std::vector<double> c_tuned(a.size(), 0.5);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, n, n, 1.25,
            a.data(), n, b.data(), n, 0.75, c_tuned.data(), n, tuned);

  // The same key the tuned call resolved: pin a context to exactly that
  // kernel + blocking and the bits must match.
  const TunedConfig* cfg = ag::tune::resolve(Precision::kF64, n, n, n, 1);
  ASSERT_NE(cfg, nullptr);
  ASSERT_NE(cfg->kernel, nullptr);
  ag::Context pinned;
  pinned.set_threads(1);
  pinned.set_kernel(cfg->kernel->name);
  pinned.set_block_sizes(cfg->block_sizes(1));
  EXPECT_FALSE(pinned.tunable());  // explicit configuration is a pin
  std::vector<double> c_pinned(a.size(), 0.5);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, n, n, 1.25,
            a.data(), n, b.data(), n, 0.75, c_pinned.data(), n, pinned);

  EXPECT_EQ(std::memcmp(c_tuned.data(), c_pinned.data(), c_tuned.size() * sizeof(double)),
            0);
}

TEST(Tune, OffModeBitwiseMatchesUntunedDefault) {
  TunerFixture fx;
  const std::int64_t n = 64;
  std::vector<double> a(static_cast<std::size_t>(n * n)), b(a.size());
  fill(&a, 3);
  fill(&b, 4);

  // Mode off: a tunable context runs the exact pre-tuner default path.
  ag::set_tune_mode(ag::kTuneModeOff);
  ag::Context tunable_off;
  tunable_off.set_threads(1);
  tunable_off.set_tunable(true);
  std::vector<double> c_off(a.size(), -2.0);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, n, n, 1.0,
            a.data(), n, b.data(), n, 1.0, c_off.data(), n, tunable_off);

  ag::Context plain;
  plain.set_threads(1);
  std::vector<double> c_plain(a.size(), -2.0);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, n, n, 1.0,
            a.data(), n, b.data(), n, 1.0, c_plain.data(), n, plain);

  EXPECT_EQ(std::memcmp(c_off.data(), c_plain.data(), c_off.size() * sizeof(double)), 0);
}

}  // namespace
