// Replacement-policy tests: tree-PLRU and random policies behave
// correctly (hit/miss accounting, victimisation properties) and the
// residency conclusions of the paper's LRU analysis degrade gracefully
// under weaker policies.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "model/machine.hpp"
#include "sim/cache.hpp"

using ag::model::CacheGeometry;
using ag::model::Replacement;
using ag::sim::addr_t;
using ag::sim::Cache;

namespace {
CacheGeometry tiny(Replacement policy) {
  CacheGeometry g{512, 2, 64};
  g.policy = policy;
  return g;
}
}  // namespace

TEST(PlruTest, HitsAndMissesCounted) {
  Cache c("plru", tiny(Replacement::TreePlru));
  EXPECT_FALSE(c.access(0x0, false));
  EXPECT_TRUE(c.access(0x0, false));
  EXPECT_EQ(c.stats().read_misses, 1u);
}

TEST(PlruTest, TwoWayPlruEqualsLru) {
  // With associativity 2, tree-PLRU and LRU are identical.
  Cache plru("plru", tiny(Replacement::TreePlru));
  Cache lru("lru", tiny(Replacement::Lru));
  const addr_t seq[] = {0x0, 0x100, 0x0, 0x200, 0x100, 0x0, 0x300, 0x200};
  for (addr_t a : seq) {
    EXPECT_EQ(plru.access(a, false), lru.access(a, false)) << std::hex << a;
  }
  EXPECT_EQ(plru.stats().misses(), lru.stats().misses());
}

TEST(PlruTest, FourWayVictimIsNotMru) {
  CacheGeometry g{1024, 4, 64};  // 4 sets x 4 ways
  g.policy = Replacement::TreePlru;
  Cache c("plru4", g);
  // Fill set 0 (set stride 256).
  for (int i = 0; i < 4; ++i) c.access(static_cast<addr_t>(i) * 0x100, false);
  c.access(0x300, false);  // touch way holding 0x300: it becomes protected
  c.access(0x400, false);  // new line: victim must not be 0x300
  EXPECT_TRUE(c.contains(0x300));
}

TEST(RandomTest, DeterministicAcrossRuns) {
  auto run = [] {
    Cache c("rnd", tiny(Replacement::Random));
    for (int i = 0; i < 64; ++i)
      c.access(static_cast<addr_t>(i % 6) * 0x100, false);
    return c.stats().misses();
  };
  EXPECT_EQ(run(), run());
}

TEST(RandomTest, ThrashesResidentSetMoreThanLru) {
  // The Eq. (15) scenario: 24 KB resident + a 4 KB stream in a 32K/4-way
  // cache. Under LRU the resident set survives; under random it erodes.
  CacheGeometry lru_g{32 * 1024, 4, 64};
  CacheGeometry rnd_g = lru_g;
  rnd_g.policy = Replacement::Random;
  Cache lru("lru", lru_g), rnd("rnd", rnd_g);
  for (Cache* c : {&lru, &rnd}) {
    for (addr_t a = 0; a < 24 * 1024; a += 64) c->access(a, false);
    for (int rep = 0; rep < 8; ++rep) {
      // Re-touch the resident set, then stream.
      for (addr_t a = 0; a < 24 * 1024; a += 64) c->access(a, false);
      for (addr_t a = 0x100000 + rep * 4096; a < 0x100000 + (rep + 1) * 4096; a += 64)
        c->access(a, false);
    }
  }
  std::uint64_t lru_resident = 0, rnd_resident = 0;
  for (addr_t a = 0; a < 24 * 1024; a += 64) {
    lru_resident += lru.contains(a) ? 1 : 0;
    rnd_resident += rnd.contains(a) ? 1 : 0;
  }
  EXPECT_EQ(lru_resident, 24u * 1024 / 64);  // LRU keeps everything
  EXPECT_LT(rnd_resident, lru_resident);     // random loses some lines
  EXPECT_LE(lru.stats().misses(), rnd.stats().misses());
}

TEST(PolicyTest, PlruRequiresPow2Associativity) {
  CacheGeometry g{768, 3, 64};
  g.policy = Replacement::TreePlru;
  EXPECT_THROW(Cache("bad", g), ag::InvalidArgument);
}

TEST(PolicyTest, NamesForReporting) {
  EXPECT_STREQ(ag::model::to_string(Replacement::Lru), "LRU");
  EXPECT_STREQ(ag::model::to_string(Replacement::TreePlru), "tree-PLRU");
  EXPECT_STREQ(ag::model::to_string(Replacement::Random), "random");
}
