// TLB model and TLB-aware blocking (the paper's future-work extension):
// unit behaviour (capacity, LRU, range translation), integration with the
// traced GEBP, and the analytic page-working-set constraint.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/block_sizes.hpp"
#include "model/cache_blocking.hpp"
#include "model/machine.hpp"
#include "sim/tlb.hpp"
#include "sim/trace.hpp"

using ag::sim::Tlb;

TEST(TlbTest, HitAfterMiss) {
  Tlb tlb({4, 4096});
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1008));  // same page
  EXPECT_FALSE(tlb.access(0x2000));
  EXPECT_EQ(tlb.stats().misses, 2u);
  EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(TlbTest, LruEvictionAtCapacity) {
  Tlb tlb({2, 4096});
  tlb.access(0x0000);
  tlb.access(0x1000);
  tlb.access(0x0000);           // page 0 is MRU
  tlb.access(0x2000);           // evicts page 1 (LRU)
  EXPECT_TRUE(tlb.contains(0x0000));
  EXPECT_FALSE(tlb.contains(0x1000));
  EXPECT_TRUE(tlb.contains(0x2000));
}

TEST(TlbTest, RangeSpanningPages) {
  Tlb tlb({8, 4096});
  EXPECT_EQ(tlb.access_range(0x0FF0, 0x40), 2);  // crosses a page boundary
  EXPECT_EQ(tlb.access_range(0x0FF0, 0x40), 0);  // both now resident
}

TEST(TlbTest, WorkingSetWithinCapacityNeverMissesAgain) {
  Tlb tlb({48, 4096});
  for (int rep = 0; rep < 3; ++rep)
    for (ag::sim::addr_t p = 0; p < 40; ++p) tlb.access(p * 4096);
  EXPECT_EQ(tlb.stats().misses, 40u);  // only the cold pass
}

TEST(TlbTest, ResetClears) {
  Tlb tlb({4, 4096});
  tlb.access(0x1000);
  tlb.reset();
  EXPECT_FALSE(tlb.contains(0x1000));
  EXPECT_EQ(tlb.stats().accesses(), 0u);
}

TEST(TlbBlocking, PagesPerGebpArithmetic) {
  const auto& m = ag::model::xgene();
  // kc=512: A block of mc rows = mc*512*8/4096 = mc pages; B sliver
  // 512*6*8/4096 = 6 pages; C tile columns = 6 pages.
  EXPECT_EQ(ag::model::tlb_pages_per_gebp(m, {8, 6}, 512, 56), 56 + 6 + 6);
  EXPECT_EQ(ag::model::tlb_pages_per_gebp(m, {8, 6}, 512, 24), 24 + 6 + 6);
}

TEST(TlbBlocking, ConstrainedMcBelowPaperMc) {
  const auto& m = ag::model::xgene();
  const auto mc = ag::model::tlb_constrained_mc(m, {8, 6}, 512);
  EXPECT_EQ(mc % 8, 0);
  // 48 entries - 8 reserve = 40 budget; mc + 12 <= 40 => mc <= 28 -> 24.
  EXPECT_EQ(mc, 24);
  EXPECT_LT(mc, 56);  // the paper's cache-derived mc overflows this DTLB
}

TEST(TlbTrace, MissesCountedAndMonotoneInMc) {
  const auto& m = ag::model::xgene();
  std::uint64_t misses_small = 0, misses_large = 0;
  for (auto [mc, out] :
       {std::pair<std::int64_t, std::uint64_t*>{24, &misses_small}, {96, &misses_large}}) {
    ag::sim::TraceConfig cfg;
    cfg.blocks = ag::paper_block_sizes({8, 6}, 1);
    cfg.blocks.mc = mc;
    const auto r = ag::sim::trace_dgemm(m, cfg, 512, 512, 512);
    *out = r.totals.dtlb_misses;
  }
  EXPECT_GT(misses_small, 0u);
  // Oversized mc thrashes the DTLB on every sliver pass.
  EXPECT_GT(misses_large, misses_small);
}
