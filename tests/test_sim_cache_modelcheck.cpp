// Model-checking the cache: an independent, obviously-correct reference
// implementation (per-set std::list LRU) must agree with the optimized
// Cache on every hit/miss/eviction decision across long random traces,
// for several geometries and read/write mixes.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "model/machine.hpp"
#include "sim/cache.hpp"

using ag::sim::addr_t;
using ag::sim::Cache;

namespace {

// Reference set-associative LRU cache: front of list = MRU.
class ReferenceLru {
 public:
  explicit ReferenceLru(const ag::model::CacheGeometry& g)
      : assoc_(g.associativity), line_(g.line_bytes), sets_(g.num_sets()) {}

  struct Result {
    bool hit;
    bool writeback;
  };

  Result access(addr_t addr, bool is_write) {
    const addr_t tag = addr / static_cast<addr_t>(line_);
    const addr_t set = tag % static_cast<addr_t>(sets_);
    auto& lines = sets_state_[set];
    for (auto it = lines.begin(); it != lines.end(); ++it) {
      if (it->tag == tag) {
        Entry e = *it;
        e.dirty = e.dirty || is_write;
        lines.erase(it);
        lines.push_front(e);
        return {true, false};
      }
    }
    bool writeback = false;
    if (static_cast<int>(lines.size()) == assoc_) {
      writeback = lines.back().dirty;
      lines.pop_back();
    }
    lines.push_front({tag, is_write});
    return {false, writeback};
  }

 private:
  struct Entry {
    addr_t tag;
    bool dirty;
  };
  int assoc_;
  int line_;
  std::int64_t sets_;
  std::map<addr_t, std::list<Entry>> sets_state_;
};

struct Geometry {
  std::int64_t size;
  int assoc;
};

class CacheModelCheck : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheModelCheck, AgreesWithReferenceOnRandomTrace) {
  const auto [size, assoc] = GetParam();
  ag::model::CacheGeometry g{size, assoc, 64};
  Cache cache("mc", g);
  ReferenceLru ref(g);
  ag::Xoshiro256 rng(static_cast<std::uint64_t>(size) * 31 + assoc);

  std::uint64_t ref_writebacks = 0;
  for (int step = 0; step < 50000; ++step) {
    // Mixed locality: hot region + cold sweeps + random far pointers.
    addr_t addr;
    switch (rng.next_below(4)) {
      case 0: addr = 0x40 + rng.next_below(static_cast<std::uint64_t>(size)); break;
      case 1: addr = 0x100000 + rng.next_below(static_cast<std::uint64_t>(size) * 4); break;
      case 2: addr = 0x40 + static_cast<addr_t>(step) * 64 % (1 << 22); break;
      default: addr = 0x40 + rng.next_u64() % (1ULL << 30); break;
    }
    const bool is_write = rng.next_below(4) == 0;
    addr_t wb = 0;
    const bool hit = cache.access(addr, is_write, &wb);
    const auto expect = ref.access(addr, is_write);
    ASSERT_EQ(hit, expect.hit) << "step " << step << " addr " << std::hex << addr;
    // Addresses start at 0x40, so wb == 0 unambiguously means "none".
    ASSERT_EQ(wb != 0, expect.writeback) << "writeback mismatch at step " << step;
    if (expect.writeback) ++ref_writebacks;
  }
  EXPECT_EQ(cache.stats().writebacks, ref_writebacks);
  EXPECT_EQ(cache.stats().accesses(), 50000u);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheModelCheck,
                         ::testing::Values(Geometry{512, 2}, Geometry{1024, 4},
                                           Geometry{32 * 1024, 4}, Geometry{8192, 8},
                                           Geometry{64 * 1024, 16}, Geometry{4096, 1}));

}  // namespace
