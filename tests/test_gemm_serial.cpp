// Serial end-to-end dgemm tests against the reference oracle: size sweeps
// across blocking boundaries, all transpose/layout combinations,
// alpha/beta semantics, strided outputs, and every kernel shape.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"

using ag::Context;
using ag::index_t;
using ag::Layout;
using ag::Matrix;
using ag::Trans;

namespace {

void check_case(const Context& ctx, index_t m, index_t n, index_t k, double alpha, double beta,
                Trans ta = Trans::NoTrans, Trans tb = Trans::NoTrans, index_t ld_extra = 0) {
  const index_t a_rows = (ta == Trans::NoTrans ? m : k) + ld_extra;
  const index_t b_rows = (tb == Trans::NoTrans ? k : n) + ld_extra;
  auto a = ag::random_matrix(ta == Trans::NoTrans ? m : k, ta == Trans::NoTrans ? k : m, 101,
                             a_rows);
  auto b = ag::random_matrix(tb == Trans::NoTrans ? k : n, tb == Trans::NoTrans ? n : k, 102,
                             b_rows);
  auto c = ag::random_matrix(m, n, 103, m + ld_extra);
  Matrix<double> c_ref(c);

  ag::dgemm(Layout::ColMajor, ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
            c.data(), c.ld(), ctx);
  ag::blocked_dgemm(Layout::ColMajor, ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(),
                    b.ld(), beta, c_ref.data(), c_ref.ld());

  const auto cmp = ag::compare_gemm_result(c.view(), c_ref.view(), k, alpha, 1.0, 1.0, beta, 1.0);
  EXPECT_TRUE(cmp.ok) << "m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha
                      << " beta=" << beta << " ta=" << ag::to_string(ta)
                      << " tb=" << ag::to_string(tb) << " diff=" << cmp.max_diff
                      << " bound=" << cmp.bound;
}

class SerialSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(SerialSizes, SquareMatchesReference) {
  Context ctx(ag::KernelShape{8, 6}, 1);
  const index_t s = GetParam();
  check_case(ctx, s, s, s, 1.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerialSizes,
                         ::testing::Values(1, 2, 5, 8, 13, 31, 48, 63, 64, 65, 96, 127, 200,
                                           256, 300));

TEST(SerialGemm, AllKernelShapes) {
  for (ag::KernelShape s : ag::paper_kernel_shapes()) {
    Context ctx(s, 1);
    check_case(ctx, 97, 83, 59, 1.0, 1.0);
  }
}

TEST(SerialGemm, AllRegisteredKernels) {
  for (const auto& k : ag::all_microkernels()) {
    Context ctx(ag::KernelShape{8, 6}, 1);
    ctx.set_kernel(k.name);
    check_case(ctx, 65, 47, 41, 1.0, 1.0);
  }
}

TEST(SerialGemm, TransposeCombos) {
  Context ctx(ag::KernelShape{8, 6}, 1);
  for (Trans ta : {Trans::NoTrans, Trans::Trans})
    for (Trans tb : {Trans::NoTrans, Trans::Trans}) check_case(ctx, 70, 54, 38, 1.0, 1.0, ta, tb);
}

TEST(SerialGemm, AlphaBetaMatrix) {
  Context ctx(ag::KernelShape{8, 6}, 1);
  for (double alpha : {0.0, 1.0, -1.0, 2.5})
    for (double beta : {0.0, 1.0, -0.5, 3.0}) check_case(ctx, 33, 29, 27, alpha, beta);
}

TEST(SerialGemm, StridedOperands) {
  Context ctx(ag::KernelShape{8, 6}, 1);
  check_case(ctx, 40, 30, 20, 1.0, 1.0, Trans::NoTrans, Trans::NoTrans, 13);
  check_case(ctx, 40, 30, 20, 1.0, 1.0, Trans::Trans, Trans::Trans, 13);
}

TEST(SerialGemm, RowMajor) {
  // Row-major 3x2 * 2x2.
  const double a[] = {1, 2, 3, 4, 5, 6};  // rows: (1,2),(3,4),(5,6)
  const double b[] = {7, 8, 9, 10};       // rows: (7,8),(9,10)
  double c[6] = {};
  Context ctx(ag::KernelShape{8, 6}, 1);
  ag::dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, 3, 2, 2, 1.0, a, 2, b, 2, 0.0, c,
            2, ctx);
  EXPECT_DOUBLE_EQ(c[0], 1 * 7 + 2 * 9);
  EXPECT_DOUBLE_EQ(c[1], 1 * 8 + 2 * 10);
  EXPECT_DOUBLE_EQ(c[4], 5 * 7 + 6 * 9);
  EXPECT_DOUBLE_EQ(c[5], 5 * 8 + 6 * 10);
}

TEST(SerialGemm, CrossesEveryBlockingBoundary) {
  // Small custom block sizes make a modest matrix exercise all layers.
  Context ctx(ag::KernelShape{4, 4}, 1);
  ag::BlockSizes bs;
  bs.mr = 4;
  bs.nr = 4;
  bs.kc = 8;
  bs.mc = 12;
  bs.nc = 16;
  ctx.set_block_sizes(bs);
  check_case(ctx, 50, 50, 50, 1.0, 1.0);
  check_case(ctx, 12, 16, 8, 1.0, 1.0);   // exactly one block each way
  check_case(ctx, 13, 17, 9, 1.0, 1.0);   // one past each boundary
}

TEST(SerialGemm, PaperBlockSizesWork) {
  Context ctx(ag::KernelShape{8, 6}, 1);
  ctx.set_block_sizes(ag::paper_block_sizes({8, 6}, 1));
  check_case(ctx, 600, 80, 530, 1.0, 1.0);  // k > kc exercises layer 2
}

TEST(SerialGemm, KZeroBetaScalesOnly) {
  Context ctx;
  double c[4] = {1, 2, 3, 4};
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 2, 0, 1.0, nullptr, 2, nullptr,
            1, 2.0, c, 2, ctx);
  EXPECT_DOUBLE_EQ(c[0], 2);
  EXPECT_DOUBLE_EQ(c[3], 8);
}

TEST(SerialGemm, AlphaZeroSkipsProduct) {
  Context ctx;
  // A/B may hold garbage when alpha == 0 (they are never read).
  double c[1] = {5};
  const double junk = std::nan("");
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 1, 1, 1, 0.0, &junk, 1, &junk, 1,
            3.0, c, 1, ctx);
  EXPECT_DOUBLE_EQ(c[0], 15);
}

TEST(SerialGemm, ValidatesLikeReference) {
  Context ctx;
  double x[4] = {};
  EXPECT_THROW(ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 2, 2, 1.0, x, 1,
                         x, 2, 0.0, x, 2, ctx),
               ag::InvalidArgument);
}

}  // namespace
