// GEMM-based DSYRK and DSYMM against the naive references, across uplo /
// trans / side, block-boundary sizes, alpha/beta combinations, and the
// triangle-only-update contract (the opposite triangle of C is never
// touched by dsyrk).
#include <gtest/gtest.h>

#include "blas/compare.hpp"
#include "blas/reference_blas3.hpp"
#include "blas3/blas3.hpp"
#include "common/matrix.hpp"

using ag::index_t;
using ag::Matrix;
using ag::Side;
using ag::Trans;
using ag::Uplo;

namespace {

struct SyrkCase {
  index_t n, k;
  double alpha, beta;
};

class SyrkTest : public ::testing::TestWithParam<SyrkCase> {};

TEST_P(SyrkTest, AllUploTransCombos) {
  const auto [n, k, alpha, beta] = GetParam();
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    for (Trans trans : {Trans::NoTrans, Trans::Trans}) {
      const index_t a_rows = trans == Trans::NoTrans ? n : k;
      const index_t a_cols = trans == Trans::NoTrans ? k : n;
      auto a = ag::random_matrix(a_rows, a_cols, 11, std::max<index_t>(1, a_rows));
      auto c = ag::random_matrix(n, n, 13);
      Matrix<double> c_ref(c);
      ag::dsyrk(uplo, trans, n, k, alpha, a.data(), a.ld(), beta, c.data(), c.ld(), ctx);
      ag::reference_dsyrk(uplo, trans, n, k, alpha, a.data(), a.ld(), beta, c_ref.data(),
                          c_ref.ld());
      const double tol = 1e-12 * static_cast<double>(std::max<index_t>(k, 1)) *
                         (std::abs(alpha) + std::abs(beta) + 1);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i)
          ASSERT_NEAR(c(i, j), c_ref(i, j), tol)
              << ag::to_string(uplo) << ag::to_string(trans) << " @ " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SyrkTest,
                         ::testing::Values(SyrkCase{1, 1, 1.0, 1.0}, SyrkCase{17, 9, 1.0, 0.0},
                                           SyrkCase{96, 40, 1.0, 1.0},   // one block
                                           SyrkCase{97, 33, 2.0, -1.0},  // one past a block
                                           SyrkCase{200, 64, -1.5, 0.5},
                                           SyrkCase{64, 0, 2.0, 0.5}));  // k = 0

TEST(SyrkContract, OppositeTriangleUntouched) {
  const index_t n = 150;
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  auto a = ag::random_matrix(n, 40, 5);
  Matrix<double> c(n, n);
  c.fill(777.0);
  ag::dsyrk(Uplo::Lower, Trans::NoTrans, n, 40, 1.0, a.data(), a.ld(), 0.0, c.data(), c.ld(),
            ctx);
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) ASSERT_EQ(c(i, j), 777.0) << i << "," << j;
}

TEST(SyrkContract, ResultIsSymmetricAcrossUplo) {
  const index_t n = 120, k = 30;
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  auto a = ag::random_matrix(n, k, 6);
  Matrix<double> cl(n, n), cu(n, n);
  cl.fill(0);
  cu.fill(0);
  ag::dsyrk(Uplo::Lower, Trans::NoTrans, n, k, 1.0, a.data(), a.ld(), 0.0, cl.data(), cl.ld(),
            ctx);
  ag::dsyrk(Uplo::Upper, Trans::NoTrans, n, k, 1.0, a.data(), a.ld(), 0.0, cu.data(), cu.ld(),
            ctx);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) ASSERT_NEAR(cl(i, j), cu(j, i), 1e-11);
}

struct SymmCase {
  index_t m, n;
  double alpha, beta;
};

class SymmTest : public ::testing::TestWithParam<SymmCase> {};

TEST_P(SymmTest, AllSideUploCombos) {
  const auto [m, n, alpha, beta] = GetParam();
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  for (Side side : {Side::Left, Side::Right}) {
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      const index_t na = side == Side::Left ? m : n;
      auto a = ag::random_matrix(na, na, 21);
      auto b = ag::random_matrix(m, n, 22);
      auto c = ag::random_matrix(m, n, 23);
      Matrix<double> c_ref(c);
      ag::dsymm(side, uplo, m, n, alpha, a.data(), a.ld(), b.data(), b.ld(), beta, c.data(),
                c.ld(), ctx);
      ag::reference_dsymm(side, uplo, m, n, alpha, a.data(), a.ld(), b.data(), b.ld(), beta,
                          c_ref.data(), c_ref.ld());
      const double tol =
          1e-12 * static_cast<double>(na + 1) * (std::abs(alpha) + std::abs(beta) + 1);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < m; ++i)
          ASSERT_NEAR(c(i, j), c_ref(i, j), tol)
              << ag::to_string(side) << ag::to_string(uplo) << " @ " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SymmTest,
                         ::testing::Values(SymmCase{1, 1, 1.0, 1.0}, SymmCase{20, 35, 1.0, 0.0},
                                           SymmCase{96, 96, 1.0, 1.0},
                                           SymmCase{97, 110, -2.0, 0.5},
                                           SymmCase{180, 75, 1.0, -1.0}));

TEST(SymmContract, AlphaZeroOnlyScales) {
  ag::Context ctx;
  const double junk = 1e300;
  double c[4] = {1, 2, 3, 4};
  ag::dsymm(Side::Left, Uplo::Lower, 2, 2, 0.0, &junk, 2, &junk, 2, 2.0, c, 2, ctx);
  EXPECT_DOUBLE_EQ(c[0], 2);
  EXPECT_DOUBLE_EQ(c[3], 8);
}

}  // namespace
