// Unit tests for the keyed packed-panel cache (core/panel_cache.hpp):
// hit/miss accounting, epoch invalidation, capacity-driven eviction and
// bypass, concurrent first-pack arbitration, and the end-to-end aliasing
// hazard — B mutated in place between two batch calls must never be
// served from a stale panel.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "core/context.hpp"
#include "core/gemm_batch.hpp"
#include "core/panel_cache.hpp"
#include "scoped_knobs.hpp"

using ag::index_t;
using ag::Matrix;
using ag::PackedPanel;
using ag::PanelCache;
using ag::PanelKey;

namespace {

PanelKey make_key(const double* b, index_t kk, index_t jj, std::uint64_t epoch) {
  PanelKey key;
  key.b = b;
  key.ldb = 64;
  key.trans = ag::Trans::NoTrans;
  key.kk = kk;
  key.jj = jj;
  key.kc = 32;
  key.nc = 48;
  key.nr = 6;
  key.epoch = epoch;
  return key;
}

// Pack callback that fills the panel with a recognizable value.
auto fill_with(double v, int* calls = nullptr) {
  return [v, calls](double* dst) {
    if (calls) ++*calls;
    for (int i = 0; i < 32 * 48; ++i) dst[i] = v;
  };
}

constexpr index_t kElems = 32 * 48;

TEST(PanelCache, MissThenHitThenEpochInvalidation) {
  agtest::ScopedPanelCacheMb cap(8);
  PanelCache& cache = PanelCache::instance();
  const std::uint64_t epoch = cache.begin_epoch();
  cache.reset_stats();
  const double* b = reinterpret_cast<const double*>(0x1000);

  int packs = 0;
  auto p1 = cache.get_or_pack(make_key(b, 0, 0, epoch), kElems, fill_with(1.0, &packs));
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(packs, 1);
  EXPECT_EQ(p1->data()[0], 1.0);

  // Same key again: served from cache, pack not called.
  auto p2 = cache.get_or_pack(make_key(b, 0, 0, epoch), kElems, fill_with(2.0, &packs));
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(packs, 1);
  EXPECT_EQ(p2.get(), p1.get());
  EXPECT_EQ(p2->data()[0], 1.0);

  // Different panel coordinates: a distinct entry.
  auto p3 = cache.get_or_pack(make_key(b, 32, 0, epoch), kElems, fill_with(3.0, &packs));
  ASSERT_NE(p3, nullptr);
  EXPECT_EQ(packs, 2);

  PanelCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.inserts, 2u);

  // New epoch: the map is dropped, the same coordinates miss again, and
  // old shared_ptrs stay valid (in-flight tickets keep panels alive).
  const std::uint64_t epoch2 = cache.begin_epoch();
  ASSERT_NE(epoch2, epoch);
  auto p4 = cache.get_or_pack(make_key(b, 0, 0, epoch2), kElems, fill_with(4.0, &packs));
  ASSERT_NE(p4, nullptr);
  EXPECT_EQ(packs, 3);
  EXPECT_EQ(p4->data()[0], 4.0);
  EXPECT_EQ(p1->data()[0], 1.0);  // evicted but alive through our ref
}

TEST(PanelCache, ZeroCapacityBypassesEverything) {
  agtest::ScopedPanelCacheMb off(0);
  PanelCache& cache = PanelCache::instance();
  const std::uint64_t epoch = cache.begin_epoch();
  cache.reset_stats();
  int packs = 0;
  auto p = cache.get_or_pack(make_key(nullptr, 0, 0, epoch), kElems, fill_with(1.0, &packs));
  EXPECT_EQ(p, nullptr);
  EXPECT_EQ(packs, 0);  // caller packs privately; cache never ran the callback
  EXPECT_EQ(cache.stats().bypasses, 1u);
}

TEST(PanelCache, CapacityEvictionIsFifoAndOversizedPanelsBypass) {
  // 1 MiB cap = 131072 doubles; each panel is 1536 doubles (12 KiB), so
  // ~85 fit. Insert 100: the earliest inserted must be evicted.
  agtest::ScopedPanelCacheMb cap(1);
  PanelCache& cache = PanelCache::instance();
  const std::uint64_t epoch = cache.begin_epoch();
  cache.reset_stats();
  const double* b = reinterpret_cast<const double*>(0x2000);

  for (int i = 0; i < 100; ++i)
    cache.get_or_pack(make_key(b, 0, 48 * i, epoch), kElems, fill_with(i));
  PanelCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 100u);
  EXPECT_GT(s.evictions, 0u);

  int packs = 0;
  // The first-inserted panel was evicted (FIFO): it misses again.
  cache.get_or_pack(make_key(b, 0, 0, epoch), kElems, fill_with(0.5, &packs));
  EXPECT_EQ(packs, 1);
  // The most recent panel is still resident.
  cache.get_or_pack(make_key(b, 0, 48 * 99, epoch), kElems, fill_with(0.5, &packs));
  EXPECT_EQ(packs, 1);

  // A panel larger than the whole cache can never be admitted.
  cache.reset_stats();
  auto huge = cache.get_or_pack(make_key(b, 64, 0, epoch), 200000, fill_with(9.0));
  EXPECT_EQ(huge, nullptr);
  EXPECT_EQ(cache.stats().bypasses, 1u);
}

TEST(PanelCache, ConcurrentRequestersPackExactlyOnce) {
  agtest::ScopedPanelCacheMb cap(8);
  PanelCache& cache = PanelCache::instance();
  const std::uint64_t epoch = cache.begin_epoch();
  cache.reset_stats();
  const double* b = reinterpret_cast<const double*>(0x3000);

  std::atomic<int> packs{0};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const PackedPanel>> panels(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      panels[static_cast<std::size_t>(t)] =
          cache.get_or_pack(make_key(b, 0, 0, epoch), kElems, [&](double* dst) {
            ++packs;
            for (index_t i = 0; i < kElems; ++i) dst[i] = 7.0;
          });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(packs.load(), 1);  // exactly one packer; everyone else waited
  for (const auto& p : panels) {
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->data()[0], 7.0);       // publication: bytes visible to waiters
    EXPECT_EQ(p.get(), panels[0].get());  // all the same panel
  }
  PanelCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 7u);
}

// The end-to-end aliasing hazard: batch 1 packs panels of B, the caller
// then mutates B *in place*, and batch 2 presents the same pointer. The
// epoch baked into every key means batch 2 must re-pack and see the new
// bytes — a stale hit here would silently compute with dead data.
TEST(PanelCache, MutatedBBetweenBatchesIsNeverServedStale) {
  agtest::ScopedSmallMnk pack_path(0);  // force the blocked (cache-using) path
  agtest::ScopedPanelCacheMb cap(64);
  const index_t m = 96, n = 72, k = 64;
  auto a = ag::random_matrix(m, k, 40000);
  auto b = ag::random_matrix(k, n, 40001);
  const auto c0 = ag::random_matrix(m, n, 40002);
  ag::Context ctx(ag::KernelShape{8, 6}, 2);

  ag::GemmBatchEntry e;
  e.m = m;
  e.n = n;
  e.k = k;
  e.alpha = 1.0;
  e.beta = 0.0;
  e.a = a.data();
  e.lda = a.ld();
  e.b = b.data();
  e.ldb = b.ld();
  e.ldc = c0.ld();

  Matrix<double> c1(c0);
  e.c = c1.data();
  ag::dgemm_batch(ag::Layout::ColMajor, &e, 1, ctx);

  // Mutate B in place — same pointer, different bytes.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < k; ++i) b(i, j) = -2.0 * b(i, j) + 1.0;

  Matrix<double> c2(c0);
  e.c = c2.data();
  ag::dgemm_batch(ag::Layout::ColMajor, &e, 1, ctx);

  Matrix<double> expect(c0);
  ag::blocked_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k,
                    1.0, a.data(), a.ld(), b.data(), b.ld(), 0.0, expect.data(), expect.ld());
  const auto cmp =
      ag::compare_gemm_result(c2.view(), expect.view(), k, 1.0, 1.0, 1.0, 0.0, 1.0);
  EXPECT_TRUE(cmp.ok) << "stale panel served after in-place mutation; diff " << cmp.max_diff;

  // And the two runs genuinely differ (the mutation changed the product).
  bool differs = false;
  for (index_t j = 0; j < n && !differs; ++j)
    for (index_t i = 0; i < m && !differs; ++i) differs = c1(i, j) != c2(i, j);
  EXPECT_TRUE(differs);
}

}  // namespace
