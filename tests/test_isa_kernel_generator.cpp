// Generated register-kernel programs: instruction counts per copy match
// Section V-A (24 fmla + 7 ldr for 8x6), register usage matches the
// paper's allocation (v8-v31 accumulators, v0-v7 working), the fmla
// operand pattern follows the rotation table, and the Figure 8 listing
// renders A64 syntax.
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <set>

#include "isa/kernel_generator.hpp"
#include "model/machine.hpp"

using ag::isa::generate_register_kernel;
using ag::isa::GeneratedKernel;
using ag::isa::KernelGenOptions;
using ag::isa::Opcode;

namespace {

GeneratedKernel gen86(KernelGenOptions opts = {}) {
  return generate_register_kernel({8, 6}, ag::model::xgene(), opts);
}

TEST(KernelGen, InstructionBudgetPerCopy8x6) {
  const GeneratedKernel gk = gen86();
  const int copies = gk.rotation.unroll;
  EXPECT_EQ(gk.body.count(Opcode::Fmla), 24 * copies);
  EXPECT_EQ(gk.body.count(Opcode::Ldr), 7 * copies);
  EXPECT_EQ(gk.body.count(Opcode::Prfm), 2 * copies);  // one A (L1) + one B (L2)
}

TEST(KernelGen, RegisterPartition8x6) {
  const GeneratedKernel gk = gen86();
  EXPECT_EQ(gk.c_registers, 24);
  EXPECT_EQ(gk.working_registers, 8);
  for (const auto& ins : gk.body.instrs) {
    if (ins.op == Opcode::Fmla) {
      EXPECT_GE(ins.dst, 8);   // accumulators live in v8..v31
      EXPECT_LE(ins.dst, 31);
      EXPECT_LT(ins.srca, 8);  // A/B live in v0..v7
      EXPECT_LT(ins.srcb, 8);
      EXPECT_TRUE(ins.lane == 0 || ins.lane == 1);
    } else if (ins.op == Opcode::Ldr) {
      EXPECT_LT(ins.dst, 8);
    }
  }
}

TEST(KernelGen, EveryAccumulatorTouchedEachCopy) {
  const GeneratedKernel gk = gen86();
  std::set<int> dsts;
  int fmla_seen = 0;
  for (const auto& ins : gk.body.instrs) {
    if (ins.op != Opcode::Fmla) continue;
    dsts.insert(ins.dst);
    if (++fmla_seen == 24) break;  // first copy
  }
  EXPECT_EQ(dsts.size(), 24u);
}

TEST(KernelGen, StreamConsumptionRates) {
  const GeneratedKernel gk = gen86();
  EXPECT_EQ(gk.a_bytes_per_copy, 64);  // mr * 8 bytes: one cache line
  EXPECT_EQ(gk.b_bytes_per_copy, 48);
  EXPECT_EQ(gk.a_bytes_per_body(), 64 * gk.rotation.unroll);
}

TEST(KernelGen, PrefetchDistancesInProgram) {
  KernelGenOptions opts;
  opts.prea_bytes = 1024;
  opts.preb_bytes = 24576;
  const GeneratedKernel gk = gen86(opts);
  bool saw_a = false, saw_b = false;
  for (const auto& ins : gk.body.instrs) {
    if (ins.op != Opcode::Prfm) continue;
    if (ins.stream == ag::isa::Stream::A) {
      EXPECT_EQ(ins.prefetch_level, 1);
      saw_a = true;
    } else if (ins.stream == ag::isa::Stream::B) {
      EXPECT_EQ(ins.prefetch_level, 2);
      saw_b = true;
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(KernelGen, NoPrefetchOption) {
  KernelGenOptions opts;
  opts.prefetch = false;
  EXPECT_EQ(gen86(opts).body.count(Opcode::Prfm), 0);
}

TEST(KernelGen, LoadsFollowRotationTable) {
  const GeneratedKernel gk = gen86();
  // Over one full unrolled body, the multiset of registers written by
  // loads equals the multiset of registers the rotation table assigns to
  // roles (each copy reloads exactly the next copy's role registers; a
  // late-read register's load may land in the following copy).
  std::multiset<int> loaded;
  for (const auto& ins : gk.body.instrs)
    if (ins.op == Opcode::Ldr) loaded.insert(ins.dst);
  std::multiset<int> expected;
  for (const auto& copy : gk.rotation.table)
    for (int reg : copy) expected.insert(reg);
  EXPECT_EQ(loaded, expected);
}

// Functional verification: interpret the generated program's dataflow.
// Each register holds a (stream, byte-offset) tag written by its last
// ldr; every fmla of copy c must multiply exactly the A sub-sliver
// [c*mr*8 + 16h] and B sub-sliver [c*nr*8 + 16(j/2)] with lane j%2 — i.e.
// rotation + scheduling + emission together preserve the mathematics.
void verify_dataflow(const GeneratedKernel& gk, int iterations) {
  struct Tag {
    ag::isa::Stream stream = ag::isa::Stream::None;
    std::int64_t offset = -1;
  };
  std::vector<Tag> regs(32);
  // Prologue: copy 0's roles are preloaded with their values.
  const auto sched = ag::isa::make_read_schedule(gk.shape);
  for (int role = 0; role < gk.rotation.num_roles; ++role) {
    const auto& r = sched.roles[static_cast<std::size_t>(role)];
    Tag t;
    t.stream = r.kind == ag::isa::Role::Kind::A ? ag::isa::Stream::A : ag::isa::Stream::B;
    t.offset = 16 * r.half;
    regs[static_cast<std::size_t>(gk.rotation.table[0][role])] = t;
  }

  const int f = gk.shape.mr * gk.shape.nr / 2;
  const int a_halves = gk.shape.mr / 2;
  for (int iter = 0; iter < iterations; ++iter) {
    const std::int64_t a_base = iter * gk.a_bytes_per_body();
    const std::int64_t b_base = iter * gk.b_bytes_per_body();
    int fmla_index = 0;
    for (const auto& ins : gk.body.instrs) {
      if (ins.op == Opcode::Ldr) {
        Tag t;
        t.stream = ins.stream;
        t.offset = (ins.stream == ag::isa::Stream::A ? a_base : b_base) + ins.offset_bytes;
        regs[static_cast<std::size_t>(ins.dst)] = t;
      } else if (ins.op == Opcode::Fmla) {
        const int copy = fmla_index / f;
        const int t = fmla_index % f;
        const int h = t / gk.shape.nr;
        const int j = t % gk.shape.nr;
        const std::int64_t copy_index = iter * gk.rotation.unroll + copy;
        const Tag& a = regs[static_cast<std::size_t>(ins.srca)];
        const Tag& b = regs[static_cast<std::size_t>(ins.srcb)];
        ASSERT_EQ(a.stream, ag::isa::Stream::A) << "iter " << iter << " fmla " << fmla_index;
        ASSERT_EQ(a.offset, copy_index * gk.a_bytes_per_copy + 16 * h)
            << "iter " << iter << " copy " << copy << " fmla " << t << " (A half " << h << ")";
        ASSERT_EQ(b.stream, ag::isa::Stream::B) << "iter " << iter << " fmla " << fmla_index;
        ASSERT_EQ(b.offset, copy_index * gk.b_bytes_per_copy + 16 * (j / 2))
            << "iter " << iter << " copy " << copy << " fmla " << t << " (B half " << j / 2
            << ")";
        ASSERT_EQ(ins.lane, j % 2);
        ++fmla_index;
      }
    }
  }
}

TEST(KernelGen, DataflowCorrectRotated) { verify_dataflow(gen86(), 3); }

TEST(KernelGen, DataflowCorrectUnrotated) {
  KernelGenOptions opts;
  opts.rotate = false;
  verify_dataflow(gen86(opts), 3);
}

TEST(KernelGen, DataflowCorrectOtherShapes) {
  for (ag::KernelShape s : {ag::KernelShape{8, 4}, {4, 4}, {6, 8}})
    verify_dataflow(generate_register_kernel(s, ag::model::xgene()), 2);
}

TEST(KernelGen, ListingLooksLikeFigure8) {
  const GeneratedKernel gk = gen86();
  const std::string listing = gk.body.listing();
  EXPECT_NE(listing.find("fmla    v8.2d, v"), std::string::npos);
  EXPECT_NE(listing.find("ldr     q"), std::string::npos);
  EXPECT_NE(listing.find("prfm    PLDL1KEEP, [x14"), std::string::npos);
  EXPECT_NE(listing.find("prfm    PLDL2KEEP, [x15"), std::string::npos);
}

TEST(KernelGen, UnrotatedVariant) {
  KernelGenOptions opts;
  opts.rotate = false;
  const GeneratedKernel gk = gen86(opts);
  EXPECT_FALSE(gk.rotation.rotated);
  EXPECT_EQ(gk.rotation.unroll, opts.identity_unroll);
  EXPECT_EQ(gk.body.count(Opcode::Fmla), 24 * opts.identity_unroll);
}

TEST(KernelGen, OtherShapes) {
  for (ag::KernelShape s : {ag::KernelShape{8, 4}, {4, 4}, {6, 8}}) {
    const GeneratedKernel gk = generate_register_kernel(s, ag::model::xgene());
    const int copies = gk.rotation.unroll;
    EXPECT_EQ(gk.body.count(Opcode::Fmla), s.mr * s.nr / 2 * copies) << s.to_string();
    EXPECT_EQ(gk.body.count(Opcode::Ldr), (s.mr + s.nr) / 2 * copies) << s.to_string();
  }
}

TEST(KernelGen, EpilogueCoversWholeCTile) {
  const GeneratedKernel gk = gen86();
  // One ldr + fmla + str triple per C register pair (24 for 8x6), with
  // offsets covering the full 8x6 tile of 16-byte pairs exactly once.
  EXPECT_EQ(gk.epilogue.count(Opcode::Ldr), 24);
  EXPECT_EQ(gk.epilogue.count(Opcode::Fmla), 24);
  EXPECT_EQ(gk.epilogue.count(Opcode::Str), 24);
  std::set<std::int64_t> offsets;
  for (const auto& ins : gk.epilogue.instrs) {
    if (ins.op == Opcode::Str) {
      EXPECT_EQ(ins.stream, ag::isa::Stream::C);
      offsets.insert(ins.offset_bytes);
    }
  }
  EXPECT_EQ(offsets.size(), 24u);
  EXPECT_EQ(*offsets.begin(), 0);
  EXPECT_EQ(*offsets.rbegin(), 16 * 23);
}

TEST(KernelGen, EpilogueReadsEveryAccumulator) {
  const GeneratedKernel gk = gen86();
  std::set<int> accs;
  for (const auto& ins : gk.epilogue.instrs)
    if (ins.op == Opcode::Fmla) accs.insert(ins.srca);
  EXPECT_EQ(accs.size(), 24u);
  for (int acc : accs) {
    EXPECT_GE(acc, 8);
    EXPECT_LE(acc, 31);
  }
}

TEST(KernelGen, RejectsOddShapes) {
  EXPECT_THROW(generate_register_kernel({5, 5}, ag::model::xgene()), ag::InvalidArgument);
}

}  // namespace
