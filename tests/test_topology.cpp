// threading/topology: the core-class / NUMA-node map the heterogeneity-
// aware runtime schedules against. Every test pins an emulated machine
// through ScopedCpuClasses (ARMGEMM_CPU_CLASSES + ARMGEMM_NUMA_NODES +
// Topology::refresh on both edges), so assertions are host-independent.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/runtime_introspect.hpp"
#include "scoped_knobs.hpp"
#include "threading/topology.hpp"

namespace {

TEST(ParseCpuClasses, AcceptsWeightedAndUnweightedGroups) {
  std::string error;
  const auto classes = ag::parse_cpu_classes("4x2.0,4x1.0", &error);
  ASSERT_EQ(classes.size(), 2u) << error;
  EXPECT_EQ(classes[0].cpus, 4);
  EXPECT_DOUBLE_EQ(classes[0].weight, 2.0);
  EXPECT_EQ(classes[1].cpus, 4);
  EXPECT_DOUBLE_EQ(classes[1].weight, 1.0);

  // The "x<weight>" part is optional and defaults to 1.0.
  const auto bare = ag::parse_cpu_classes("2", &error);
  ASSERT_EQ(bare.size(), 1u) << error;
  EXPECT_EQ(bare[0].cpus, 2);
  EXPECT_DOUBLE_EQ(bare[0].weight, 1.0);

  const auto mixed = ag::parse_cpu_classes("1x1.5,3", &error);
  ASSERT_EQ(mixed.size(), 2u) << error;
  EXPECT_DOUBLE_EQ(mixed[0].weight, 1.5);
  EXPECT_DOUBLE_EQ(mixed[1].weight, 1.0);
}

TEST(ParseCpuClasses, RejectsMalformedSpecs) {
  for (const char* bad : {"", "0x1.0", "-2x1.0", "2x0", "2x-1.0", "garbage",
                          "2x1.0,", "2y3", "2x", "4096x1.0,1"}) {
    SCOPED_TRACE(bad);
    std::string error;
    EXPECT_TRUE(ag::parse_cpu_classes(bad, &error).empty());
    EXPECT_FALSE(error.empty());
  }
}

TEST(Topology, EnvOverrideBuildsEmulatedClassMap) {
  agtest::ScopedCpuClasses topo("2x2.0,2x1.0");
  const ag::Topology& t = ag::Topology::get();
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.num_classes(), 2);
  EXPECT_EQ(t.source(), 2);  // env override
  EXPECT_TRUE(t.asymmetric());
  EXPECT_EQ(t.class_cpus(0), 2);
  EXPECT_EQ(t.class_cpus(1), 2);
  // Classes cover contiguous cpu ranges in spec order.
  EXPECT_EQ(t.class_of_cpu(0), 0);
  EXPECT_EQ(t.class_of_cpu(1), 0);
  EXPECT_EQ(t.class_of_cpu(2), 1);
  EXPECT_EQ(t.class_of_cpu(3), 1);
  // Seeds are normalized so the fastest class sits at exactly 1.0.
  EXPECT_DOUBLE_EQ(t.class_weight_seed(0), 1.0);
  EXPECT_DOUBLE_EQ(t.class_weight_seed(1), 0.5);
  // Before any refinement the live weight IS the seed.
  EXPECT_DOUBLE_EQ(t.class_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(t.class_weight(1), 0.5);
}

TEST(Topology, RanksWrapAroundTheCpuList) {
  agtest::ScopedCpuClasses topo("2x2.0,2x1.0");
  const ag::Topology& t = ag::Topology::get();
  EXPECT_EQ(t.cpu_of_rank(0), 0);
  EXPECT_EQ(t.cpu_of_rank(3), 3);
  EXPECT_EQ(t.cpu_of_rank(4), 0);  // rank r lives on cpu r mod num_cpus
  EXPECT_EQ(t.cpu_of_rank(7), 3);
  EXPECT_EQ(t.class_of_rank(5), 0);
  EXPECT_EQ(t.class_of_rank(6), 1);
  // Out-of-range queries degrade to cpu/class/node 0, never UB.
  EXPECT_EQ(t.cpu_of_rank(-1), 0);
  EXPECT_EQ(t.class_of_cpu(99), 0);
  EXPECT_EQ(t.node_of_cpu(-5), 0);
}

TEST(Topology, NodeOverrideSplitsCpusContiguously) {
  agtest::ScopedCpuClasses topo("2x2.0,2x1.0", /*nodes=*/2);
  const ag::Topology& t = ag::Topology::get();
  EXPECT_EQ(t.num_nodes(), 2);
  EXPECT_EQ(t.node_of_cpu(0), 0);
  EXPECT_EQ(t.node_of_cpu(1), 0);
  EXPECT_EQ(t.node_of_cpu(2), 1);
  EXPECT_EQ(t.node_of_cpu(3), 1);
  EXPECT_EQ(t.node_of_rank(6), 1);  // rank 6 -> cpu 2 -> node 1
}

TEST(Topology, NodeOverrideClampsToCpuCount) {
  agtest::ScopedCpuClasses topo("2", /*nodes=*/8);
  EXPECT_EQ(ag::Topology::get().num_nodes(), 2);
}

TEST(Topology, RankWeightsFollowClassMembership) {
  agtest::ScopedCpuClasses topo("2x2.0,2x1.0");
  const std::vector<double> w = ag::Topology::get().rank_weights(8);
  ASSERT_EQ(w.size(), 8u);
  const std::vector<double> want = {1.0, 1.0, 0.5, 0.5, 1.0, 1.0, 0.5, 0.5};
  for (int r = 0; r < 8; ++r) {
    SCOPED_TRACE(r);
    EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(r)],
                     want[static_cast<std::size_t>(r)]);
  }
}

TEST(Topology, OnlineRefinementReplacesSeedWithMeasuredRatio) {
  agtest::ScopedCpuClasses topo("2x2.0,2x1.0");
  const ag::Topology& t = ag::Topology::get();
  // Seed says 2:1; feed ticket accounting that says 4:1 (class 0 spends
  // 100ns per ticket, class 1 spends 400ns). Refinement needs >= 64
  // tickets per class.
  for (int i = 0; i < 100; ++i) {
    t.note_ticket(0, 100);
    t.note_ticket(1, 400);
  }
  EXPECT_DOUBLE_EQ(t.class_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(t.class_weight(1), 0.25);
  // The seed itself is untouched — refresh() restarts from it.
  EXPECT_DOUBLE_EQ(t.class_weight_seed(1), 0.5);

  const ag::obs::TopologyStats s = t.stats();
  EXPECT_TRUE(s.weights_refined);
  ASSERT_EQ(s.classes.size(), 2u);
  EXPECT_EQ(s.classes[0].tickets, 100u);
  EXPECT_DOUBLE_EQ(s.classes[1].weight, 0.25);
}

TEST(Topology, RefinementNeedsAStableSamplePerClass) {
  agtest::ScopedCpuClasses topo("2x2.0,2x1.0");
  const ag::Topology& t = ag::Topology::get();
  // 63 tickets on one class only: both gates (count, coverage) fail, so
  // the live weight stays the seed.
  for (int i = 0; i < 63; ++i) t.note_ticket(0, 100);
  EXPECT_FALSE(t.stats().weights_refined);
  EXPECT_DOUBLE_EQ(t.class_weight(1), 0.5);
}

TEST(Topology, StatsSnapshotMirrorsTheTopology) {
  agtest::ScopedCpuClasses topo("1x1.0,3x0.25", /*nodes=*/2);
  const ag::obs::TopologyStats s = ag::Topology::get().stats();
  EXPECT_EQ(s.cpus, 4);
  EXPECT_EQ(s.nodes, 2);
  EXPECT_EQ(s.source, 2);
  ASSERT_EQ(s.classes.size(), 2u);
  EXPECT_EQ(s.classes[0].cls, 0);
  EXPECT_EQ(s.classes[0].cpus, 1);
  EXPECT_DOUBLE_EQ(s.classes[0].weight_seed, 1.0);
  EXPECT_EQ(s.classes[1].cpus, 3);
  EXPECT_DOUBLE_EQ(s.classes[1].weight_seed, 0.25);
  // The obs source is registered by first use, so the telemetry layer
  // sees the same snapshot without linking threading.
  EXPECT_TRUE(ag::obs::topology_stats_available());
  EXPECT_EQ(ag::obs::topology_stats().cpus, 4);
}

TEST(Topology, MalformedSpecFallsBackToDiscovery) {
  agtest::ScopedCpuClasses topo("not-a-spec");
  // The bad override is rejected (with a stderr warning) and discovery
  // runs instead — whatever the host looks like, it is not "env".
  EXPECT_NE(ag::Topology::get().source(), 2);
  EXPECT_GE(ag::Topology::get().num_cpus(), 1);
  EXPECT_GE(ag::Topology::get().num_classes(), 1);
}

TEST(Topology, RefreshRestoresThePreviousMapAfterAGuard) {
  int cpus_before = 0;
  {
    agtest::ScopedCpuClasses outer("3x1.0");
    cpus_before = ag::Topology::get().num_cpus();
    ASSERT_EQ(cpus_before, 3);
    {
      agtest::ScopedCpuClasses inner("5x1.0,5x0.5");
      EXPECT_EQ(ag::Topology::get().num_cpus(), 10);
    }
    EXPECT_EQ(ag::Topology::get().num_cpus(), 3);
  }
}

}  // namespace
