// LAPACK-lite tests: getrf/getrs/gesv/potrf/potrs against direct
// residual checks and the reference GEMM, with panel-width sweeps
// (blocking invariance), singularity reporting, and pivoting behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "lapack/lapack.hpp"

using ag::index_t;
using ag::Matrix;

namespace {

Matrix<double> well_conditioned(index_t n, std::uint64_t seed) {
  auto a = ag::random_matrix(n, n, seed);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

// Reconstruct P*L*U from getrf output and compare against the original.
double lu_residual(const Matrix<double>& a0, const Matrix<double>& lu,
                   const std::vector<index_t>& ipiv) {
  const index_t n = a0.rows();
  // Form L*U.
  Matrix<double> prod(n, n);
  prod.fill(0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      const index_t lim = std::min(i, j);  // L(i,p) nonzero for p<=i; U(p,j) for p<=j
      for (index_t p = 0; p <= lim; ++p) {
        const double lip = p == i ? 1.0 : lu(i, p);
        acc += lip * lu(p, j);
      }
      prod(i, j) = acc;
    }
  }
  // Apply the recorded swaps to a copy of A0 (forward order) and compare.
  Matrix<double> pa(a0);
  for (index_t i = 0; i < n; ++i) {
    const index_t p = ipiv[static_cast<std::size_t>(i)];
    if (p != i)
      for (index_t c = 0; c < n; ++c) std::swap(pa(i, c), pa(p, c));
  }
  double err = 0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) err = std::max(err, std::abs(prod(i, j) - pa(i, j)));
  return err;
}

class GetrfPanels : public ::testing::TestWithParam<index_t> {};

TEST_P(GetrfPanels, FactorizationResidual) {
  const index_t n = 150;
  auto a0 = well_conditioned(n, 1);
  Matrix<double> a(a0);
  std::vector<index_t> ipiv;
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ASSERT_EQ(ag::getrf(n, n, a.data(), a.ld(), &ipiv, GetParam(), ctx), 0);
  EXPECT_LT(lu_residual(a0, a, ipiv), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PanelWidths, GetrfPanels, ::testing::Values(1, 8, 32, 64, 150, 200));

TEST(Getrf, PivotingHandlesZeroLeadingElement) {
  // A with a(0,0) == 0 requires a row swap.
  Matrix<double> a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 3;
  std::vector<index_t> ipiv;
  ASSERT_EQ(ag::getrf(2, 2, a.data(), a.ld(), &ipiv), 0);
  EXPECT_EQ(ipiv[0], 1);  // swapped with row 1
}

TEST(Getrf, ReportsSingularity) {
  Matrix<double> a(3, 3);
  a.fill(1.0);  // rank 1
  std::vector<index_t> ipiv;
  EXPECT_NE(ag::getrf(3, 3, a.data(), a.ld(), &ipiv), 0);
}

TEST(Getrf, RectangularTallAndWide) {
  for (auto [m, n] : {std::pair<index_t, index_t>{120, 70}, {70, 120}}) {
    auto a0 = ag::random_matrix(m, n, 3);
    for (index_t i = 0; i < std::min(m, n); ++i) a0(i, i) += 50.0;
    Matrix<double> a(a0);
    std::vector<index_t> ipiv;
    ASSERT_EQ(ag::getrf(m, n, a.data(), a.ld(), &ipiv, 32), 0) << m << "x" << n;
    EXPECT_EQ(static_cast<index_t>(ipiv.size()), std::min(m, n));
  }
}

TEST(Gesv, SolvesMultipleRhs) {
  const index_t n = 130, nrhs = 7;
  auto a0 = well_conditioned(n, 5);
  auto x_true = ag::random_matrix(n, nrhs, 6);
  // B = A * X via the reference.
  Matrix<double> b(n, nrhs);
  b.fill(0.0);
  ag::reference_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, nrhs, n,
                      1.0, a0.data(), a0.ld(), x_true.data(), x_true.ld(), 0.0, b.data(),
                      b.ld());
  Matrix<double> a(a0);
  ASSERT_EQ(ag::gesv(n, nrhs, a.data(), a.ld(), b.data(), b.ld()), 0);
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_NEAR(b(i, j), x_true(i, j), 1e-9) << i << "," << j;
}

TEST(Potrf, FactorizesSpdMatrix) {
  const index_t n = 140;
  auto m0 = ag::random_matrix(n, n, 7);
  Matrix<double> a(n, n);
  a.fill(0.0);
  // A = M M^T + n I via reference gemm.
  ag::reference_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::Trans, n, n, n, 1.0,
                      m0.data(), m0.ld(), m0.data(), m0.ld(), 0.0, a.data(), a.ld());
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Matrix<double> a0(a);
  ASSERT_EQ(ag::potrf(n, a.data(), a.ld(), 48), 0);
  // Residual: L L^T == A0 on the lower triangle.
  double err = 0, scale = 0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      double acc = 0;
      for (index_t p = 0; p <= j; ++p) acc += a(i, p) * a(j, p);
      err = std::max(err, std::abs(acc - a0(i, j)));
      scale = std::max(scale, std::abs(a0(i, j)));
    }
  EXPECT_LT(err, 1e-10 * scale * static_cast<double>(n));
}

TEST(Potrf, RejectsIndefiniteMatrix) {
  Matrix<double> a(2, 2);
  a(0, 0) = 1;
  a(1, 0) = 5;
  a(0, 1) = 5;
  a(1, 1) = 1;  // eigenvalues 6, -4
  EXPECT_NE(ag::potrf(2, a.data(), a.ld()), 0);
}

TEST(Potrs, SolvesAfterPotrf) {
  const index_t n = 96, nrhs = 4;
  auto m0 = ag::random_matrix(n, n, 9);
  Matrix<double> a(n, n);
  a.fill(0.0);
  ag::reference_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::Trans, n, n, n, 1.0,
                      m0.data(), m0.ld(), m0.data(), m0.ld(), 0.0, a.data(), a.ld());
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  auto x_true = ag::random_matrix(n, nrhs, 10);
  Matrix<double> b(n, nrhs);
  b.fill(0.0);
  ag::reference_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, nrhs, n,
                      1.0, a.data(), a.ld(), x_true.data(), x_true.ld(), 0.0, b.data(), b.ld());
  ASSERT_EQ(ag::potrf(n, a.data(), a.ld()), 0);
  ag::potrs(n, nrhs, a.data(), a.ld(), b.data(), b.ld());
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_NEAR(b(i, j), x_true(i, j), 1e-8);
}

TEST(Lapack, ThreadedFactorizationMatchesSerial) {
  const index_t n = 160;
  auto a0 = well_conditioned(n, 11);
  Matrix<double> a1(a0), a4(a0);
  std::vector<index_t> p1, p4;
  ag::Context serial(ag::KernelShape{8, 6}, 1);
  ag::Context threaded(ag::KernelShape{8, 6}, 4);
  ASSERT_EQ(ag::getrf(n, n, a1.data(), a1.ld(), &p1, 48, serial), 0);
  ASSERT_EQ(ag::getrf(n, n, a4.data(), a4.ld(), &p4, 48, threaded), 0);
  EXPECT_EQ(p1, p4);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_NEAR(a1(i, j), a4(i, j), 1e-10);
}

}  // namespace
