// Edge cases of the blocking arithmetic in obs/expected.cpp: shapes where
// k is smaller than kc, m/n are not multiples of mr/nr, and thread
// partitions leave remainder chunks. Each prediction is checked two ways:
// by hand against the Figure 2 loop structure, and against the counters a
// real dgemm call records.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "common/knobs.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "obs/expected.hpp"
#include "obs/gemm_stats.hpp"
#include "scoped_knobs.hpp"

using ag::index_t;

namespace {

ag::BlockSizes tiny_blocks() {
  ag::BlockSizes bs;
  bs.mr = 8;
  bs.nr = 6;
  bs.kc = 8;
  bs.mc = 16;
  bs.nc = 12;
  return bs;
}

void run_dgemm(const ag::Context& ctx, index_t m, index_t n, index_t k) {
  auto a = ag::random_matrix(m, k, 1);
  auto b = ag::random_matrix(k, n, 2);
  auto c = ag::random_matrix(m, n, 3);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.0,
            a.data(), std::max<index_t>(a.ld(), 1), b.data(), std::max<index_t>(b.ld(), 1),
            1.0, c.data(), std::max<index_t>(c.ld(), 1), ctx);
}

void expect_measured_matches(index_t m, index_t n, index_t k, int threads,
                             bool check_pack_b_calls) {
  const ag::BlockSizes bs = tiny_blocks();
  ag::Context ctx(ag::KernelShape{8, 6}, threads);
  ctx.set_block_sizes(bs);
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, m, n, k);
  const auto got = stats.totals();
  const auto want = ag::obs::expected_gemm_counters(m, n, k, bs);
  std::ostringstream label;
  label << m << "x" << n << "x" << k << " threads=" << threads;

  // The serial model is exact whenever the parallel driver stays in 1-D
  // row-block scheduling (each mc block claimed whole, exactly once).
  // When m has fewer mc blocks than ranks the scheduler splits each row
  // block into column groups: GEBP calls multiply by the group count and
  // A-packing may be repeated per group (which rank claims which group is
  // timing-dependent), so only scheduling-independent invariants hold.
  const index_t row_blocks = (m + bs.mc - 1) / bs.mc;
  const bool exact_rows = threads == 1 || row_blocks >= threads;
  if (exact_rows) {
    EXPECT_EQ(got.pack_a_calls, want.pack_a_calls) << label.str();
    EXPECT_EQ(got.gebp_calls, want.gebp_calls) << label.str();
    EXPECT_EQ(got.pack_a_bytes, want.pack_a_bytes) << label.str();
  } else {
    EXPECT_GE(got.pack_a_calls, want.pack_a_calls) << label.str();
    EXPECT_LE(got.pack_a_calls, want.pack_a_calls * static_cast<std::uint64_t>(2 * threads))
        << label.str();
    EXPECT_GE(got.gebp_calls, want.gebp_calls) << label.str();
    EXPECT_LE(got.gebp_calls, want.gebp_calls * static_cast<std::uint64_t>(2 * threads))
        << label.str();
    EXPECT_GE(got.pack_a_bytes, want.pack_a_bytes) << label.str();
  }
  if (check_pack_b_calls) {
    EXPECT_EQ(got.pack_b_calls, want.pack_b_calls) << label.str();
  }
  EXPECT_EQ(got.kernel_calls, want.kernel_calls) << label.str();
  EXPECT_EQ(got.pack_b_bytes, want.pack_b_bytes) << label.str();
  EXPECT_EQ(got.c_bytes, want.c_bytes) << label.str();
  EXPECT_DOUBLE_EQ(got.flops, want.flops) << label.str();
}

TEST(ObsExpected, KSmallerThanKcByHand) {
  agtest::ScopedSmallMnk pack_path(0);
  // 16x12x3 with kc=8: a single (jj, kk, ii) iteration whose packed
  // buffers are sized by the actual kc'=3, not the configured kc.
  const auto c = ag::obs::expected_gemm_counters(16, 12, 3, tiny_blocks());
  EXPECT_EQ(c.pack_b_calls, 1u);
  EXPECT_EQ(c.pack_a_calls, 1u);
  EXPECT_EQ(c.gebp_calls, 1u);
  EXPECT_EQ(c.kernel_calls, 4u);                    // 2 a-slivers x 2 b-slivers
  EXPECT_EQ(c.pack_a_bytes, 2u * 8u * 3u * 8u);     // slivers * mr * kc' * sizeof
  EXPECT_EQ(c.pack_b_bytes, 2u * 6u * 3u * 8u);
  EXPECT_EQ(c.c_bytes, 2u * 16u * 12u * 8u);
  EXPECT_DOUBLE_EQ(c.flops, 2.0 * 16 * 12 * 3);
}

TEST(ObsExpected, EdgeTilesRoundUpToFullSlivers) {
  agtest::ScopedSmallMnk pack_path(0);
  // 9x7x8: neither dimension is a multiple of mr/nr, so packing rounds
  // each up to whole slivers (zero-padded), while C traffic stays exact.
  const auto c = ag::obs::expected_gemm_counters(9, 7, 8, tiny_blocks());
  EXPECT_EQ(c.pack_a_calls, 1u);
  EXPECT_EQ(c.pack_b_calls, 1u);
  EXPECT_EQ(c.kernel_calls, 4u);                    // ceil(9/8) * ceil(7/6)
  EXPECT_EQ(c.pack_a_bytes, 2u * 8u * 8u * 8u);     // rounded to 2 slivers of mr=8
  EXPECT_EQ(c.pack_b_bytes, 2u * 6u * 8u * 8u);     // rounded to 2 slivers of nr=6
  EXPECT_EQ(c.c_bytes, 2u * 9u * 7u * 8u);          // C is never padded
}

TEST(ObsExpected, DegenerateShapes) {
  agtest::ScopedSmallMnk pack_path(0);
  const ag::BlockSizes bs = tiny_blocks();
  const auto empty_m = ag::obs::expected_gemm_counters(0, 4, 4, bs);
  EXPECT_EQ(empty_m.gemm_calls, 0u);
  EXPECT_DOUBLE_EQ(empty_m.flops, 0.0);

  // k == 0 is a valid call (pure beta-scale): recorded, but no packing,
  // no kernels, no flops.
  const auto zero_k = ag::obs::expected_gemm_counters(4, 4, 0, bs);
  EXPECT_EQ(zero_k.gemm_calls, 1u);
  EXPECT_EQ(zero_k.pack_a_calls, 0u);
  EXPECT_EQ(zero_k.pack_b_calls, 0u);
  EXPECT_EQ(zero_k.gebp_calls, 0u);
  EXPECT_DOUBLE_EQ(zero_k.flops, 0.0);

  const auto one = ag::obs::expected_gemm_counters(1, 1, 1, bs);
  EXPECT_EQ(one.kernel_calls, 1u);
  EXPECT_EQ(one.pack_a_bytes, 8u * 1u * 8u);  // one mr-sliver, kc'=1
  EXPECT_EQ(one.pack_b_bytes, 6u * 1u * 8u);
  EXPECT_DOUBLE_EQ(one.flops, 2.0);
}

TEST(ObsExpected, PackedBytesNeverUndercount) {
  agtest::ScopedSmallMnk pack_path(0);
  // Padding only ever rounds up: packed traffic >= the m*k / k*n words
  // actually consumed, with equality exactly on sliver-aligned shapes.
  const ag::BlockSizes bs = tiny_blocks();
  const index_t shapes[][3] = {{8, 6, 8}, {9, 7, 3}, {17, 13, 9}, {24, 18, 16}, {1, 40, 5}};
  for (const auto& s : shapes) {
    const auto c = ag::obs::expected_gemm_counters(s[0], s[1], s[2], bs);
    EXPECT_GE(c.pack_a_bytes, static_cast<std::uint64_t>(s[0] * s[2]) * 8u);
    EXPECT_GE(c.pack_b_bytes, static_cast<std::uint64_t>(s[2] * s[1]) * 8u);
    if (s[0] % bs.mr == 0 && s[1] % bs.nr == 0) {
      // Sliver-aligned: no padding. A is repacked once per B panel; B is
      // packed exactly once overall.
      const std::uint64_t n_panels =
          static_cast<std::uint64_t>((s[1] + bs.nc - 1) / bs.nc);
      EXPECT_EQ(c.pack_a_bytes, n_panels * static_cast<std::uint64_t>(s[0] * s[2]) * 8u);
      EXPECT_EQ(c.pack_b_bytes, static_cast<std::uint64_t>(s[2] * s[1]) * 8u);
    }
  }
}

TEST(ObsExpected, MeasuredSerialMatchesOnEdgeShapes) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  agtest::ScopedSmallMnk pack_path(0);
  // k < kc; m/n off-sliver; k off-kc; everything off at once.
  expect_measured_matches(16, 12, 3, 1, /*check_pack_b_calls=*/true);
  expect_measured_matches(9, 7, 8, 1, /*check_pack_b_calls=*/true);
  expect_measured_matches(16, 12, 11, 1, /*check_pack_b_calls=*/true);
  expect_measured_matches(19, 14, 10, 1, /*check_pack_b_calls=*/true);
}

TEST(ObsExpected, MeasuredParallelMatchesWithPartitionRemainders) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  agtest::ScopedSmallMnk pack_path(0);
  // partition_range splits M mc-aligned; these shapes give one rank a
  // remainder chunk (17 -> 16+1) or no work at all (15 < mc with 2 ranks
  // still produces the same global chunk set). pack_b_calls is per-rank
  // in the parallel driver, so it is excluded from the exact comparison.
  for (int threads : {2, 3}) {
    expect_measured_matches(17, 13, 9, threads, /*check_pack_b_calls=*/false);
    expect_measured_matches(15, 12, 8, threads, /*check_pack_b_calls=*/false);
    expect_measured_matches(48, 18, 16, threads, /*check_pack_b_calls=*/false);
    expect_measured_matches(33, 25, 20, threads, /*check_pack_b_calls=*/false);
  }
}

TEST(ObsExpected, SerialAndParallelPredictionsShareTotals) {
  agtest::ScopedSmallMnk pack_path(0);
  // The prediction itself is thread-count independent: the parallel
  // driver performs the same packing and kernel work, just partitioned.
  const ag::BlockSizes bs = tiny_blocks();
  const auto c = ag::obs::expected_gemm_counters(40, 30, 20, bs);
  // ceil(40/16)=3 row chunks x ceil(30/12)=3 col panels x ceil(20/8)=3
  EXPECT_EQ(c.pack_b_calls, 3u * 3u);
  EXPECT_EQ(c.pack_a_calls, 3u * 3u * 3u);
  EXPECT_EQ(c.gebp_calls, 3u * 3u * 3u);
}

TEST(ObsExpected, SmallFastPathPredictsNoPackedTraffic) {
  // Under the default threshold the driver dispatches these shapes to the
  // no-pack fast path; the model must predict that, not the blocked nest.
  agtest::ScopedSmallMnk fast_path(32);
  const auto c = ag::obs::expected_gemm_counters(16, 12, 8, tiny_blocks());
  EXPECT_EQ(c.gemm_calls, 1u);
  EXPECT_EQ(c.small_calls, 1u);
  EXPECT_EQ(c.pack_a_calls, 0u);
  EXPECT_EQ(c.pack_b_calls, 0u);
  EXPECT_EQ(c.gebp_calls, 0u);
  EXPECT_EQ(c.kernel_calls, 0u);
  EXPECT_EQ(c.pack_a_bytes, 0u);
  EXPECT_EQ(c.pack_b_bytes, 0u);
  EXPECT_DOUBLE_EQ(c.flops, 2.0 * 16 * 12 * 8);

  // Just past the threshold the packed path comes back.
  const auto big = ag::obs::expected_gemm_counters(64, 48, 32, tiny_blocks());
  EXPECT_EQ(big.small_calls, 0u);
  EXPECT_GT(big.gebp_calls, 0u);
}

TEST(ObsExpected, SmallFastPathMeasuredMatches) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  agtest::ScopedSmallMnk fast_path(32);
  const ag::BlockSizes bs = tiny_blocks();
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ctx.set_block_sizes(bs);
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, 16, 12, 8);
  const auto got = stats.totals();
  const auto want = ag::obs::expected_gemm_counters(16, 12, 8, bs);
  EXPECT_EQ(got.small_calls, want.small_calls);
  EXPECT_EQ(got.small_calls, 1u);
  EXPECT_EQ(got.pack_a_calls, 0u);
  EXPECT_EQ(got.pack_b_calls, 0u);
  EXPECT_EQ(got.gebp_calls, 0u);
  EXPECT_GT(got.small_seconds, 0.0);
  EXPECT_DOUBLE_EQ(got.flops, want.flops);
}

TEST(ObsExpected, FastPathThresholdBoundaryIsExact) {
  // m*n*k == T^3 is small; one more element pushes it over.
  agtest::ScopedSmallMnk fast_path(32);
  EXPECT_TRUE(ag::use_small_gemm(32, 32, 32));
  EXPECT_TRUE(ag::use_small_gemm(1, 1, 32768));
  EXPECT_FALSE(ag::use_small_gemm(33, 32, 32));
  EXPECT_FALSE(ag::use_small_gemm(1, 1, 32769));
  EXPECT_FALSE(ag::use_small_gemm(0, 32, 32));  // degenerate: not "small"

  agtest::ScopedSmallMnk off(0);
  EXPECT_FALSE(ag::use_small_gemm(1, 1, 1));
}

}  // namespace
