// Coherence tests (the Figure 1 cache-coherent fabric): write-invalidate
// across cores, M->S downgrade with data forwarding on remote reads, and
// the shared-packed-B scenario of the parallel GEMM (one core packs, all
// cores read — no extra DRAM traffic).
#include <gtest/gtest.h>

#include "model/machine.hpp"
#include "sim/hierarchy.hpp"

using ag::sim::AccessType;
using ag::sim::Hierarchy;
using ag::sim::Served;

TEST(Coherence, RemoteDirtyLineForwardedNotReReadFromMemory) {
  Hierarchy h(ag::model::xgene());
  // Core 0 writes a line: one memory read (write-allocate fill).
  h.access(0, 0x1000, 8, AccessType::Write);
  EXPECT_EQ(h.memory_reads(), 1u);
  // Core 4 (different module) reads it: served over the fabric, no second
  // memory read, one cache-to-cache transfer.
  const Served s = h.access(4, 0x1000, 8, AccessType::Read);
  EXPECT_EQ(s, Served::L3);
  EXPECT_EQ(h.memory_reads(), 1u);
  EXPECT_EQ(h.c2c_transfers(), 1u);
}

TEST(Coherence, WriteInvalidatesPeerCopies) {
  Hierarchy h(ag::model::xgene());
  // Cores 0 and 2 both read the line (copies in L1.0, L1.2, L2.0, L2.1).
  h.access(0, 0x2000, 8, AccessType::Read);
  h.access(2, 0x2000, 8, AccessType::Read);
  ASSERT_TRUE(h.l1(0).contains(0x2000));
  ASSERT_TRUE(h.l1(2).contains(0x2000));
  // Core 2 writes: core 0's copies must go.
  h.access(2, 0x2000, 8, AccessType::Write);
  EXPECT_FALSE(h.l1(0).contains(0x2000));
  EXPECT_FALSE(h.l2(0).contains(0x2000));
  EXPECT_TRUE(h.l1(2).contains(0x2000));
  EXPECT_GT(h.invalidations(), 0u);
}

TEST(Coherence, DowngradedOwnerKeepsCleanCopy) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x3000, 8, AccessType::Write);  // M in core 0
  h.access(4, 0x3000, 8, AccessType::Read);   // downgrade M -> S
  // Core 0 still hits locally afterwards.
  EXPECT_EQ(h.access(0, 0x3000, 8, AccessType::Read), Served::L1);
  // And the L3 now holds the reflected data.
  EXPECT_TRUE(h.l3().contains(0x3000));
}

TEST(Coherence, SharedPackedPanelScenario) {
  // One core writes a 24 KB "packed B sliver"; the other seven read it.
  // Every remote read must be satisfied without DRAM.
  Hierarchy h(ag::model::xgene());
  for (ag::sim::addr_t a = 0x100000; a < 0x100000 + 24 * 1024; a += 64)
    h.access(0, a, 64, AccessType::Write);
  const auto reads_before = h.memory_reads();
  for (int core = 1; core < 8; ++core)
    for (ag::sim::addr_t a = 0x100000; a < 0x100000 + 24 * 1024; a += 64)
      h.access(core, a, 64, AccessType::Read);
  EXPECT_EQ(h.memory_reads(), reads_before);  // no new DRAM reads
  EXPECT_GT(h.c2c_transfers() + h.l3().stats().read_hits, 0u);
}

TEST(Coherence, SameModulePartnerServedByLocalL2) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x4000, 8, AccessType::Read);
  // Partner core 1 shares module 0's L2: no snoop needed.
  EXPECT_EQ(h.access(1, 0x4000, 8, AccessType::Read), Served::L2);
  EXPECT_EQ(h.c2c_transfers(), 0u);
}

TEST(Coherence, CountersResetWithStats) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x5000, 8, AccessType::Write);
  h.access(4, 0x5000, 8, AccessType::Read);
  ASSERT_GT(h.c2c_transfers(), 0u);
  h.clear_stats();
  EXPECT_EQ(h.c2c_transfers(), 0u);
  EXPECT_EQ(h.invalidations(), 0u);
}
