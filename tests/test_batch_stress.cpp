// Concurrency battery for the persistent batch runtime: many caller
// threads hammering one process-wide pool (run under -DAG_SANITIZE=thread
// for the race proof), plus the bitwise-determinism guarantee — each
// batch entry's ticket decomposition is a pure function of shape and
// blocking, so results must be bit-identical across repeats AND across
// thread counts. Block sizes are pinned (auto-tuned defaults vary with
// the thread count, which would legitimately change the decomposition).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "core/context.hpp"
#include "core/gemm_batch.hpp"
#include "core/panel_cache.hpp"
#include "scoped_knobs.hpp"
#include "threading/persistent_pool.hpp"

using ag::index_t;
using ag::Matrix;

namespace {

ag::BlockSizes pinned_blocks() {
  ag::BlockSizes bs;
  bs.mr = 8;
  bs.nr = 6;
  bs.kc = 32;
  bs.mc = 32;
  bs.nc = 48;
  return bs;
}

// One three-entry ragged batch into fresh copies of the c0s; returns the
// concatenated raw result bytes of every entry.
std::vector<double> run_batch_once(int threads, const std::vector<Matrix<double>>& as,
                                   const std::vector<Matrix<double>>& bs_in,
                                   const std::vector<Matrix<double>>& c0s) {
  ag::Context ctx(ag::KernelShape{8, 6}, threads);
  ctx.set_block_sizes(pinned_blocks());
  std::vector<Matrix<double>> cs;
  std::vector<ag::GemmBatchEntry> entries;
  for (std::size_t i = 0; i < as.size(); ++i) cs.emplace_back(c0s[i]);
  for (std::size_t i = 0; i < as.size(); ++i) {
    ag::GemmBatchEntry e;
    e.m = c0s[i].rows();
    e.n = c0s[i].cols();
    e.k = as[i].cols();
    e.alpha = 1.25;
    e.beta = 0.5;
    e.a = as[i].data();
    e.lda = as[i].ld();
    e.b = bs_in[i].data();
    e.ldb = bs_in[i].ld();
    e.c = cs[i].data();
    e.ldc = cs[i].ld();
    entries.push_back(e);
  }
  ag::dgemm_batch(ag::Layout::ColMajor, entries.data(),
                  static_cast<index_t>(entries.size()), ctx);
  std::vector<double> out;
  for (const Matrix<double>& c : cs)
    for (index_t j = 0; j < c.cols(); ++j)
      out.insert(out.end(), c.data() + j * c.ld(), c.data() + j * c.ld() + c.rows());
  return out;
}

TEST(BatchStress, BitwiseDeterministicAcrossRunsAndThreadCounts) {
  // m=200 with mc=32 gives 7 row blocks (capped at 8 tickets); the other
  // entries land on 2 tickets and the small path respectively, so one
  // batch covers every ticket kind.
  agtest::ScopedSmallMnk pack_path(0);
  std::vector<Matrix<double>> as, bs_in, c0s;
  const index_t shapes[3][3] = {{200, 96, 80}, {64, 48, 40}, {24, 18, 16}};
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t seed = 9000 + 10 * static_cast<std::uint64_t>(i);
    as.push_back(ag::random_matrix(shapes[i][0], shapes[i][2], seed));
    bs_in.push_back(ag::random_matrix(shapes[i][2], shapes[i][1], seed + 1));
    c0s.push_back(ag::random_matrix(shapes[i][0], shapes[i][1], seed + 2));
  }

  const std::vector<double> golden = run_batch_once(1, as, bs_in, c0s);
  const std::size_t bytes = golden.size() * sizeof(double);
  for (int threads : {1, 2, 4, 8}) {
    for (int rep = 0; rep < 20; ++rep) {
      const std::vector<double> got = run_batch_once(threads, as, bs_in, c0s);
      ASSERT_EQ(std::memcmp(got.data(), golden.data(), bytes), 0)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(BatchStress, DeterministicWithPanelCacheOnAndOff) {
  // A cache-served panel and a privately packed panel hold identical
  // bytes (same pack_b), so toggling the cache must not change results.
  agtest::ScopedSmallMnk pack_path(0);
  std::vector<Matrix<double>> as, bs_in, c0s;
  as.push_back(ag::random_matrix(96, 64, 9100));
  bs_in.push_back(ag::random_matrix(64, 72, 9101));
  c0s.push_back(ag::random_matrix(96, 72, 9102));

  std::vector<double> with_cache, without_cache;
  {
    agtest::ScopedPanelCacheMb cache_on(64);
    with_cache = run_batch_once(4, as, bs_in, c0s);
  }
  {
    agtest::ScopedPanelCacheMb cache_off(0);
    without_cache = run_batch_once(4, as, bs_in, c0s);
  }
  ASSERT_EQ(with_cache.size(), without_cache.size());
  ASSERT_EQ(std::memcmp(with_cache.data(), without_cache.data(),
                        with_cache.size() * sizeof(double)),
            0);
}

struct CallerProblem {
  std::vector<Matrix<double>> as, bs_in, c0s, cs;
};

// kCallers host threads, each submitting kBatchesPerCaller batches of
// kEntriesPerBatch entries to the shared persistent pool. Every caller
// helps execute (and may steal siblings' tickets); all results must match
// the oracle. Run under TSan for the data-race proof.
void stress_many_callers(int pool_threads, std::int64_t spin_us) {
  constexpr int kCallers = 4;
  constexpr int kBatchesPerCaller = 5;
  constexpr int kEntriesPerBatch = 4;
  agtest::ScopedSpinUs spin(spin_us);

  std::vector<CallerProblem> problems(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    for (int e = 0; e < kEntriesPerBatch; ++e) {
      const index_t m = 48 + 16 * e, n = 40 + 8 * t, k = 36 + 4 * e;
      const std::uint64_t seed = 20000 + 100 * static_cast<std::uint64_t>(t) +
                                 10 * static_cast<std::uint64_t>(e);
      problems[t].as.push_back(ag::random_matrix(m, k, seed));
      problems[t].bs_in.push_back(ag::random_matrix(k, n, seed + 1));
      problems[t].c0s.push_back(ag::random_matrix(m, n, seed + 2));
      problems[t].cs.emplace_back(0, 0);
    }
  }

  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&problems, t, pool_threads] {
      CallerProblem& p = problems[static_cast<std::size_t>(t)];
      ag::Context ctx(ag::KernelShape{8, 6}, pool_threads);
      for (int rep = 0; rep < kBatchesPerCaller; ++rep) {
        std::vector<Matrix<double>> cs;
        std::vector<ag::GemmBatchEntry> entries;
        for (std::size_t e = 0; e < p.c0s.size(); ++e) cs.emplace_back(p.c0s[e]);
        for (std::size_t e = 0; e < p.c0s.size(); ++e) {
          ag::GemmBatchEntry ge;
          ge.m = p.c0s[e].rows();
          ge.n = p.c0s[e].cols();
          ge.k = p.as[e].cols();
          ge.alpha = 1.0;
          ge.beta = 1.0;
          ge.a = p.as[e].data();
          ge.lda = p.as[e].ld();
          ge.b = p.bs_in[e].data();
          ge.ldb = p.bs_in[e].ld();
          ge.c = cs[e].data();
          ge.ldc = cs[e].ld();
          entries.push_back(ge);
        }
        ag::dgemm_batch(ag::Layout::ColMajor, entries.data(),
                        static_cast<index_t>(entries.size()), ctx);
        for (std::size_t e = 0; e < cs.size(); ++e) p.cs[e] = std::move(cs[e]);
      }
    });
  }
  for (std::thread& c : callers) c.join();

  for (const CallerProblem& p : problems) {
    for (std::size_t e = 0; e < p.cs.size(); ++e) {
      Matrix<double> expect(p.c0s[e]);
      ag::blocked_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans,
                        expect.rows(), expect.cols(), p.as[e].cols(), 1.0, p.as[e].data(),
                        p.as[e].ld(), p.bs_in[e].data(), p.bs_in[e].ld(), 1.0, expect.data(),
                        expect.ld());
      const auto cmp = ag::compare_gemm_result(p.cs[e].view(), expect.view(), p.as[e].cols(),
                                               1.0, 1.0, 1.0, 1.0, 1.0);
      EXPECT_TRUE(cmp.ok) << "entry " << e << " diff " << cmp.max_diff;
    }
  }
}

TEST(BatchStress, ManyCallersOnePersistentPool) { stress_many_callers(3, ag::spin_wait_us()); }

TEST(BatchStress, ManyCallersImmediateBlockMode) {
  // ARMGEMM_SPIN_US=0: workers and waiters go straight to the futex path,
  // exercising the condvar handoffs that spinning normally hides.
  stress_many_callers(2, 0);
}

TEST(BatchStress, ManyCallersSharedBWithCacheChurn) {
  // Every caller's batch shares one B, and concurrent batch calls bump
  // the cache epoch under each other: in-flight panels must stay alive
  // (shared_ptr) while the map churns. Correctness is the assertion;
  // TSan proves the publication ordering.
  constexpr int kCallers = 4;
  constexpr int kReps = 6;
  agtest::ScopedSmallMnk pack_path(0);
  agtest::ScopedPanelCacheMb cache_on(8);
  const index_t m = 96, n = 72, k = 64;
  const auto shared_b = ag::random_matrix(k, n, 30000);

  std::vector<CallerProblem> problems(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    const std::uint64_t seed = 30010 + 10 * static_cast<std::uint64_t>(t);
    problems[t].as.push_back(ag::random_matrix(m, k, seed));
    problems[t].c0s.push_back(ag::random_matrix(m, n, seed + 1));
    problems[t].cs.emplace_back(0, 0);
  }

  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&problems, &shared_b, t] {
      CallerProblem& p = problems[static_cast<std::size_t>(t)];
      ag::Context ctx(ag::KernelShape{8, 6}, 2);
      ctx.set_block_sizes(pinned_blocks());
      for (int rep = 0; rep < kReps; ++rep) {
        Matrix<double> c(p.c0s[0]);
        ag::GemmBatchEntry e;
        e.m = c.rows();
        e.n = c.cols();
        e.k = p.as[0].cols();
        e.alpha = 1.0;
        e.beta = 0.0;
        e.a = p.as[0].data();
        e.lda = p.as[0].ld();
        e.b = shared_b.data();
        e.ldb = shared_b.ld();
        e.c = c.data();
        e.ldc = c.ld();
        ag::dgemm_batch(ag::Layout::ColMajor, &e, 1, ctx);
        p.cs[0] = std::move(c);
      }
    });
  }
  for (std::thread& c : callers) c.join();

  for (const CallerProblem& p : problems) {
    Matrix<double> expect(p.c0s[0]);
    ag::blocked_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k,
                      1.0, p.as[0].data(), p.as[0].ld(), shared_b.data(), shared_b.ld(), 0.0,
                      expect.data(), expect.ld());
    const auto cmp =
        ag::compare_gemm_result(p.cs[0].view(), expect.view(), k, 1.0, 1.0, 1.0, 0.0, 1.0);
    EXPECT_TRUE(cmp.ok) << "diff " << cmp.max_diff;
  }
}

TEST(BatchStress, TinyQueueDepthForcesInlineOverflow) {
  // Depth 1 makes nearly every ticket overflow and run inline on its
  // caller while workers drain the one queued ticket: both execution
  // paths race on the same submission's completion count.
  agtest::ScopedQueueDepth depth(1);
  stress_many_callers(2, ag::spin_wait_us());
}

}  // namespace
