// Serving-telemetry layer (obs/telemetry): histogram bucket math,
// model-drift detection on synthetic series, shape classification, the
// end-to-end record -> snapshot -> Prometheus/JSON exposition path, the
// flight-recorder ring, the SIGUSR2 dump, concurrent recording (the
// ThreadSanitizer target), and the C API mirror.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "capi/armgemm_cblas.h"
#include "common/json.hpp"
#include "common/knobs.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "obs/drift.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"

namespace obs = ag::obs;
using ag::Context;
using ag::index_t;
using ag::Layout;
using ag::Trans;

// ---- latency bucket math -------------------------------------------------

TEST(TelemetryHistogramBuckets, LowLatenciesAreExact) {
  for (std::uint64_t ns = 0; ns < 4; ++ns) {
    EXPECT_EQ(obs::latency_bucket(ns), static_cast<int>(ns));
    EXPECT_EQ(obs::latency_bucket_lower_ns(static_cast<int>(ns)), ns);
  }
  EXPECT_EQ(obs::latency_bucket(4), 4);
}

TEST(TelemetryHistogramBuckets, BoundsRoundTrip) {
  // Every non-overflow bucket: its inclusive lower bound and its last
  // nanosecond both map back to the same index, and bounds are strictly
  // increasing (no gaps, no overlaps).
  for (int b = 0; b < obs::kLatencyBuckets - 1; ++b) {
    const std::uint64_t lo = obs::latency_bucket_lower_ns(b);
    const std::uint64_t hi = obs::latency_bucket_upper_ns(b);
    ASSERT_LT(lo, hi) << "bucket " << b;
    EXPECT_EQ(obs::latency_bucket(lo), b) << "lower bound of bucket " << b;
    EXPECT_EQ(obs::latency_bucket(hi - 1), b) << "last ns of bucket " << b;
    EXPECT_EQ(obs::latency_bucket(hi), b + 1) << "first ns past bucket " << b;
  }
}

TEST(TelemetryHistogramBuckets, MonotoneAndTotal) {
  // Dense sweep over the low range plus a geometric sweep to the top:
  // larger durations never map to smaller buckets.
  int prev = 0;
  for (std::uint64_t ns = 0; ns <= 4096; ++ns) {
    const int b = obs::latency_bucket(ns);
    ASSERT_GE(b, prev) << "ns=" << ns;
    prev = b;
  }
  for (std::uint64_t ns = 4096; ns < (std::uint64_t{1} << 62); ns += ns / 3) {
    const int b = obs::latency_bucket(ns);
    ASSERT_GE(b, prev) << "ns=" << ns;
    ASSERT_LT(b, obs::kLatencyBuckets);
    prev = b;
  }
}

TEST(TelemetryHistogramBuckets, OverflowBucket) {
  const int last = obs::kLatencyBuckets - 1;
  EXPECT_EQ(obs::latency_bucket(std::numeric_limits<std::uint64_t>::max()), last);
  EXPECT_EQ(obs::latency_bucket(obs::latency_bucket_lower_ns(last)), last);
  EXPECT_EQ(obs::latency_bucket(obs::latency_bucket_lower_ns(last) - 1), last - 1);
}

TEST(TelemetryHistogramBuckets, RelativeWidthBounded) {
  // The HDR-lite geometry promises <= 25% relative bucket width once past
  // the exact-value buckets.
  for (int b = 4; b < obs::kLatencyBuckets - 1; ++b) {
    const double lo = static_cast<double>(obs::latency_bucket_lower_ns(b));
    const double hi = static_cast<double>(obs::latency_bucket_upper_ns(b));
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12) << "bucket " << b;
  }
}

TEST(TelemetryHistogramBuckets, EfficiencyBuckets) {
  EXPECT_EQ(obs::efficiency_bucket(-1.0), 0);
  EXPECT_EQ(obs::efficiency_bucket(0.0), 0);
  EXPECT_EQ(obs::efficiency_bucket(std::numeric_limits<double>::quiet_NaN()), 0);
  EXPECT_EQ(obs::efficiency_bucket(0.019), 0);
  EXPECT_EQ(obs::efficiency_bucket(0.021), 1);
  EXPECT_EQ(obs::efficiency_bucket(0.5), 25);
  EXPECT_EQ(obs::efficiency_bucket(1.27), obs::kEfficiencyBuckets - 1);
  EXPECT_EQ(obs::efficiency_bucket(50.0), obs::kEfficiencyBuckets - 1);
  EXPECT_DOUBLE_EQ(obs::efficiency_bucket_lower(25), 0.5);
  // Monotone over a dense sweep.
  int prev = 0;
  for (double e = 0.0; e < 2.0; e += 0.001) {
    const int b = obs::efficiency_bucket(e);
    ASSERT_GE(b, prev) << "eff=" << e;
    prev = b;
  }
}

namespace {

// Deterministic pseudo-random histogram for the merge-law tests.
obs::LatencyHistogram synthetic_hist(std::uint64_t seed) {
  obs::LatencyHistogram h;
  std::uint64_t x = seed * 2654435761u + 1;
  for (int i = 0; i < obs::kLatencyBuckets; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    h.counts[i] = (x >> 33) % 7;
    h.total += h.counts[i];
  }
  h.sum = static_cast<double>(seed + 1) * 0.125;
  h.max = static_cast<double>((seed * 13) % 97) * 1e-6;
  return h;
}

void expect_same(const obs::LatencyHistogram& a, const obs::LatencyHistogram& b) {
  for (int i = 0; i < obs::kLatencyBuckets; ++i) ASSERT_EQ(a.counts[i], b.counts[i]) << i;
  EXPECT_EQ(a.total, b.total);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

}  // namespace

TEST(TelemetryHistogramMerge, AssociativeAndCommutative) {
  const auto a = synthetic_hist(1), b = synthetic_hist(2), c = synthetic_hist(3);

  obs::LatencyHistogram left = a;
  left += b;
  left += c;  // (a + b) + c
  obs::LatencyHistogram bc = b;
  bc += c;
  obs::LatencyHistogram right = a;
  right += bc;  // a + (b + c)
  expect_same(left, right);

  obs::LatencyHistogram ab = a;
  ab += b;
  obs::LatencyHistogram ba = b;
  ba += a;
  expect_same(ab, ba);

  // Identity: merging an empty histogram changes nothing.
  obs::LatencyHistogram id = a;
  id += obs::LatencyHistogram{};
  expect_same(id, a);
}

TEST(TelemetryHistogramMerge, AtomicSnapshotScales) {
  obs::AtomicHistogram<obs::kLatencyBuckets> h;
  h.record(obs::latency_bucket(1000), 1000);
  h.record(obs::latency_bucket(2000), 2000);
  h.record(obs::latency_bucket(500), 500);
  const auto s = h.snapshot(1e-9);
  EXPECT_EQ(s.total, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 3500e-9);
  EXPECT_DOUBLE_EQ(s.max, 2000e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 3500e-9 / 3);
  h.reset();
  EXPECT_EQ(h.snapshot(1e-9).total, 0u);
}

TEST(TelemetryHistogramQuantile, EmptyAndOverflow) {
  obs::LatencyHistogram h;
  EXPECT_DOUBLE_EQ(obs::latency_quantile(h, 0.5), 0.0);

  // A lone overflow-bucket sample reports the recorded max for every q.
  h.counts[obs::kLatencyBuckets - 1] = 1;
  h.total = 1;
  h.sum = h.max = 9.5;
  EXPECT_DOUBLE_EQ(obs::latency_quantile(h, 0.5), 9.5);
  EXPECT_DOUBLE_EQ(obs::latency_quantile(h, 1.0), 9.5);
}

TEST(TelemetryHistogramQuantile, OrderedAndClamped) {
  obs::LatencyHistogram h;
  auto put = [&](std::uint64_t ns, std::uint64_t count) {
    h.counts[static_cast<std::size_t>(obs::latency_bucket(ns))] += count;
    h.total += count;
    h.sum += static_cast<double>(ns * count) * 1e-9;
    if (static_cast<double>(ns) * 1e-9 > h.max) h.max = static_cast<double>(ns) * 1e-9;
  };
  put(1000, 50);
  put(10000, 40);
  put(100000, 9);
  put(1000000, 1);

  const double p50 = obs::latency_quantile(h, 0.50);
  const double p95 = obs::latency_quantile(h, 0.95);
  const double p99 = obs::latency_quantile(h, 0.99);
  const double p100 = obs::latency_quantile(h, 1.0);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, p100);
  EXPECT_LE(p100, h.max);
  // p50 lands in the 1000 ns bucket (within its 25% width), p99 in the
  // 100000 ns bucket.
  EXPECT_NEAR(p50, 1000e-9, 1000e-9 * 0.3);
  EXPECT_NEAR(p99, 100000e-9, 100000e-9 * 0.3);
}

// ---- drift detector ------------------------------------------------------

TEST(TelemetryDrift, NoDriftStaysQuiet) {
  obs::DriftDetector d;
  for (int i = 0; i < 2000; ++i) {
    const double ratio = (i & 1) ? 1.03 : 0.97;  // bounded noise around 1
    ASSERT_EQ(d.observe(ratio), obs::DriftDetector::Event::kNone) << "sample " << i;
  }
  EXPECT_FALSE(d.in_drift());
  EXPECT_EQ(d.anomalies(), 0u);
  EXPECT_NEAR(d.fast_ewma(), 1.0, 0.05);
  EXPECT_NEAR(d.reference_ewma(), 1.0, 0.05);
}

TEST(TelemetryDrift, IgnoresBadSamples) {
  obs::DriftDetector d;
  EXPECT_EQ(d.observe(std::numeric_limits<double>::quiet_NaN()),
            obs::DriftDetector::Event::kNone);
  EXPECT_EQ(d.observe(std::numeric_limits<double>::infinity()),
            obs::DriftDetector::Event::kNone);
  EXPECT_EQ(d.observe(0.0), obs::DriftDetector::Event::kNone);
  EXPECT_EQ(d.observe(-1.0), obs::DriftDetector::Event::kNone);
  EXPECT_EQ(d.samples(), 0u);
}

TEST(TelemetryDrift, StepDriftTriggersOnce) {
  obs::DriftDetector d;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(d.observe(1.0), obs::DriftDetector::Event::kNone) << "sample " << i;
  }
  // Sustained 40% efficiency loss: the fast EWMA (alpha 0.08, ~12-call
  // memory) must cross the 25% divergence threshold within a few dozen
  // calls, and only fire a single onset.
  int trigger_at = -1;
  for (int i = 0; i < 300; ++i) {
    const auto e = d.observe(0.6);
    if (e == obs::DriftDetector::Event::kTriggered) {
      trigger_at = i;
      break;
    }
    ASSERT_EQ(e, obs::DriftDetector::Event::kNone);
  }
  ASSERT_GE(trigger_at, 1) << "step drift never triggered";
  ASSERT_LT(trigger_at, 60) << "step drift took too long to trigger";
  EXPECT_TRUE(d.in_drift());
  EXPECT_EQ(d.anomalies(), 1u);
  // Still in drift: no second onset while the divergence persists.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(d.observe(0.6), obs::DriftDetector::Event::kNone);
  }
  EXPECT_EQ(d.anomalies(), 1u);
}

TEST(TelemetryDrift, ReferenceFrozenWhileInDrift) {
  obs::DriftDetector d;
  for (int i = 0; i < 200; ++i) d.observe(1.0);
  while (!d.in_drift()) d.observe(0.5);
  const double frozen = d.reference_ewma();
  for (int i = 0; i < 500; ++i) d.observe(0.5);
  // The anomaly must not be absorbed into the baseline it is measured
  // against.
  EXPECT_DOUBLE_EQ(d.reference_ewma(), frozen);
  EXPECT_TRUE(d.in_drift());
}

TEST(TelemetryDrift, RecoversAndRearms) {
  obs::DriftDetector d;
  for (int i = 0; i < 200; ++i) d.observe(1.0);
  while (!d.in_drift()) d.observe(0.5);

  int recover_at = -1;
  for (int i = 0; i < 500; ++i) {
    const auto e = d.observe(1.0);
    if (e == obs::DriftDetector::Event::kRecovered) {
      recover_at = i;
      break;
    }
    ASSERT_EQ(e, obs::DriftDetector::Event::kNone);
  }
  ASSERT_GE(recover_at, 0) << "never recovered after the ratio returned to 1";
  EXPECT_FALSE(d.in_drift());
  EXPECT_EQ(d.anomalies(), 1u);

  // Re-armed: a second sustained step fires a second onset.
  for (int i = 0; i < 200; ++i) d.observe(1.0);
  bool second = false;
  for (int i = 0; i < 300 && !second; ++i) {
    second = d.observe(0.5) == obs::DriftDetector::Event::kTriggered;
  }
  EXPECT_TRUE(second);
  EXPECT_EQ(d.anomalies(), 2u);
}

TEST(TelemetryDrift, WarmupSuppressesEarlyTrigger) {
  obs::DriftConfig cfg;
  cfg.min_samples = 32;
  obs::DriftDetector d(cfg);
  // Divergence appears from sample 2 on; the detector must sit out the
  // warm-up window regardless.
  d.observe(1.0);
  std::uint64_t trigger_sample = 0;
  for (int i = 0; i < 400 && trigger_sample == 0; ++i) {
    if (d.observe(0.3) == obs::DriftDetector::Event::kTriggered) trigger_sample = d.samples();
  }
  ASSERT_GT(trigger_sample, 0u);
  EXPECT_GE(trigger_sample, cfg.min_samples);
}

TEST(TelemetryDrift, ResetClearsState) {
  obs::DriftDetector d;
  for (int i = 0; i < 200; ++i) d.observe(1.0);
  while (!d.in_drift()) d.observe(0.5);
  d.reset();
  EXPECT_EQ(d.samples(), 0u);
  EXPECT_EQ(d.anomalies(), 0u);
  EXPECT_FALSE(d.in_drift());
  EXPECT_DOUBLE_EQ(d.divergence(), 0.0);
}

// ---- shape classification ------------------------------------------------

TEST(TelemetryShapeClass, ClassifyKindsAndDecades) {
  const std::int64_t small_t = ag::small_gemm_mnk();
  ag::set_small_gemm_mnk(32);  // deterministic small threshold: 32^3

  auto kind = [](std::int64_t m, std::int64_t n, std::int64_t k) {
    return obs::ShapeClass::classify(m, n, k).kind;
  };
  EXPECT_EQ(kind(8, 8, 8), obs::ShapeKind::kSmall);
  EXPECT_EQ(kind(32, 32, 32), obs::ShapeKind::kSmall);
  EXPECT_EQ(kind(1024, 8, 8), obs::ShapeKind::kSkinny);
  EXPECT_EQ(kind(48, 400, 64), obs::ShapeKind::kSkinny);
  EXPECT_EQ(kind(100, 100, 100), obs::ShapeKind::kSquare);
  EXPECT_EQ(kind(200, 150, 100), obs::ShapeKind::kSquare);  // 2x spread: not skinny
  EXPECT_EQ(kind(512, 512, 512), obs::ShapeKind::kLarge);
  EXPECT_EQ(kind(256, 256, 256), obs::ShapeKind::kLarge);  // boundary: exactly 256^3
  // Volume alone does not make a skinny call "large".
  EXPECT_EQ(kind(1 << 20, 8, 8), obs::ShapeKind::kSkinny);

  EXPECT_EQ(obs::ShapeClass::classify(100, 100, 100).decade, 6);  // 1e6
  EXPECT_EQ(obs::ShapeClass::classify(10, 10, 10).decade, 3);
  EXPECT_EQ(obs::ShapeClass::classify(1, 1, 1).decade, 0);
  // Decades clamp at the table edge instead of indexing out of range.
  EXPECT_EQ(obs::ShapeClass::classify(1 << 20, 1 << 20, 1 << 20).decade,
            obs::kShapeDecades - 1);

  ag::set_small_gemm_mnk(small_t);
}

TEST(TelemetryShapeClass, IndexRoundTripAndLabels) {
  for (int i = 0; i < obs::kShapeClasses; ++i) {
    const auto sc = obs::ShapeClass::from_index(i);
    EXPECT_EQ(sc.index(), i);
    const std::string label = sc.label();
    EXPECT_NE(label.find("/d"), std::string::npos) << label;
    EXPECT_NE(std::string(obs::to_string(sc.kind)), "");
  }
}

// ---- end-to-end recording / exposition -----------------------------------

namespace {

class TelemetryE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::stats_compiled_in) GTEST_SKIP() << "built with -DARMGEMM_STATS=OFF";
    saved_flight_depth_ = ag::flight_depth();
    saved_metrics_path_ = ag::metrics_path();
    ag::set_metrics_path("");
    // Inject a deterministic Section III model so enable() never
    // calibrates inside the test process.
    obs::telemetry_set_model(10.0, ag::model::CostParams{1e-10, 1e-9, 0.125}, 1.0);
    obs::telemetry_enable();
    obs::telemetry_reset();
  }

  void TearDown() override {
    if (!obs::stats_compiled_in) return;
    obs::telemetry_disable();
    ag::set_flight_depth(saved_flight_depth_);
    ag::set_metrics_path(saved_metrics_path_);
    obs::telemetry_reset();
  }

  // Runs `count` identical column-major dgemm calls of size s^3.
  static void run_burst(int count, index_t s, int threads) {
    Context ctx(ag::KernelShape{8, 6}, threads);
    auto a = ag::random_matrix(s, s, 301);
    auto b = ag::random_matrix(s, s, 302);
    auto c = ag::random_matrix(s, s, 303);
    for (int i = 0; i < count; ++i) {
      ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, s, s, s, 1.0, a.data(),
                a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(), ctx);
    }
  }

  std::int64_t saved_flight_depth_ = 256;
  std::string saved_metrics_path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST_F(TelemetryE2E, RecordsCallsIntoSnapshot) {
  run_burst(8, 64, 1);
  run_burst(4, 160, 2);

  const auto snap = obs::telemetry_snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.total_calls, 12u);
  EXPECT_GE(snap.uptime_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.peak_gflops_per_core, 10.0);

  std::uint64_t class_calls = 0;
  bool drift_fed = false;
  for (const auto& c : snap.classes) {
    class_calls += c.calls;
    EXPECT_EQ(c.latency.total, c.calls);
    EXPECT_EQ(c.efficiency.total, c.calls);
    EXPECT_GT(c.latency.max, 0.0);
    EXPECT_LE(c.p50, c.p95);
    EXPECT_LE(c.p95, c.p99);
    EXPECT_LE(c.p99, c.latency.max);
    if (c.drift_samples > 0) drift_fed = true;
  }
  EXPECT_EQ(class_calls, 12u);
  EXPECT_TRUE(drift_fed) << "no class fed the drift detector";

  // Flight: every call retained (depth default 256 >> 12), time-ordered.
  EXPECT_EQ(snap.flight_recorded, 12u);
  ASSERT_EQ(snap.flight.size(), 12u);
  for (std::size_t i = 1; i < snap.flight.size(); ++i) {
    EXPECT_LE(snap.flight[i - 1].t, snap.flight[i].t);
  }
  // The parallel burst shows up in at least one worker barrier-wait lane.
  EXPECT_GE(snap.workers.size(), 1u);
}

TEST_F(TelemetryE2E, JsonRenderRoundTripsThroughParser) {
  run_burst(6, 48, 1);
  const auto snap = obs::telemetry_snapshot();

  std::string err;
  const auto doc = ag::JsonValue::parse(obs::telemetry_render_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc["schema"].as_string(), "armgemm-telemetry/1");
  EXPECT_TRUE(doc["enabled"].as_bool());
  EXPECT_EQ(static_cast<std::uint64_t>(doc["total_calls"].as_number()), snap.total_calls);
  ASSERT_TRUE(doc["classes"].is_array());
  EXPECT_EQ(doc["classes"].size(), snap.classes.size());
  ASSERT_TRUE(doc["flight"].is_array());
  EXPECT_EQ(doc["flight"].size(), snap.flight.size());
  for (const auto& rec : doc["flight"].items()) {
    EXPECT_EQ(static_cast<index_t>(rec["m"].as_number()), 48);
    EXPECT_GT(rec["seconds"].as_number(), 0.0);
    EXPECT_FALSE(rec["schedule"].as_string().empty());
  }
}

TEST_F(TelemetryE2E, PrometheusRenderHasCoreFamilies) {
  run_burst(5, 48, 1);
  const std::string prom = obs::telemetry_render_prometheus();

  for (const char* needle :
       {"# TYPE armgemm_call_latency_seconds histogram", "armgemm_calls_total",
        "le=\"+Inf\"", "armgemm_call_latency_seconds_count", "armgemm_telemetry_enabled 1",
        "armgemm_drift_anomalies_total", "armgemm_flight_records_total",
        "armgemm_peak_gflops_per_core"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << "missing: " << needle;
  }
  // Text format 0.0.4: every non-comment line is "name{...} value".
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST_F(TelemetryE2E, WriteMetricsEmitsBothFiles) {
  // No configured path and no argument: refuses instead of guessing.
  EXPECT_EQ(obs::telemetry_write_metrics(""), -1);

  run_burst(3, 32, 1);
  const std::string path = "telemetry_e2e_metrics.prom";
  ASSERT_EQ(obs::telemetry_write_metrics(path), 0);

  const std::string prom = slurp(path);
  EXPECT_NE(prom.find("armgemm_calls_total"), std::string::npos);
  std::string err;
  const auto doc = ag::JsonValue::parse(slurp(path + ".json"), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc["schema"].as_string(), "armgemm-telemetry/1");

  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
}

TEST_F(TelemetryE2E, FlightRingWrapsKeepingNewest) {
  ag::set_flight_depth(8);
  obs::telemetry_reset();  // re-sizes the rings to the knob

  // 20 calls with distinct k so the retained tail is identifiable.
  const index_t s = 16, kmax = 20;
  auto a = ag::random_matrix(s, kmax, 401);
  auto b = ag::random_matrix(kmax, s, 402);
  auto c = ag::random_matrix(s, s, 403);
  Context ctx(ag::KernelShape{8, 6}, 1);
  for (index_t k = 1; k <= kmax; ++k) {
    ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, s, s, k, 1.0, a.data(),
              a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(), ctx);
  }

  const auto snap = obs::telemetry_snapshot();
  EXPECT_EQ(snap.flight_recorded, 20u);
  ASSERT_EQ(snap.flight.size(), 8u);
  for (std::size_t i = 0; i < snap.flight.size(); ++i) {
    EXPECT_EQ(snap.flight[i].k, static_cast<index_t>(13 + i));  // oldest-first tail
  }

  const std::string path = "telemetry_e2e_flight.json";
  ASSERT_EQ(obs::telemetry_dump_flight(path), 0);
  std::string err;
  const auto doc = ag::JsonValue::parse(slurp(path), &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(doc.is_array());
  EXPECT_EQ(doc.size(), 8u);
  std::remove(path.c_str());
}

#if !defined(_WIN32)
TEST_F(TelemetryE2E, Sigusr2DumpsMetricsAtNextCall) {
  const std::string path = "telemetry_e2e_sigusr2.prom";
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
  ag::set_metrics_path(path);

  // Multi-threaded burst, then the signal, then one more call to carry
  // out the deferred dump (the handler only sets a flag).
  run_burst(4, 96, 2);
  ASSERT_EQ(std::raise(SIGUSR2), 0);
  run_burst(1, 32, 1);

  std::string err;
  const auto doc = ag::JsonValue::parse(slurp(path + ".json"), &err);
  ASSERT_TRUE(err.empty()) << "dump missing or unparsable: " << err;
  EXPECT_EQ(doc["schema"].as_string(), "armgemm-telemetry/1");
  ASSERT_TRUE(doc["flight"].is_array());
  EXPECT_GE(doc["flight"].size(), 4u);
  for (const auto& rec : doc["flight"].items()) {
    EXPECT_GT(rec["m"].as_number(), 0.0);
    EXPECT_GT(rec["n"].as_number(), 0.0);
    EXPECT_GT(rec["k"].as_number(), 0.0);
  }
  EXPECT_NE(slurp(path).find("armgemm_calls_total"), std::string::npos);

  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
}
#endif

TEST_F(TelemetryE2E, ConcurrentRecordAndSnapshot) {
  // Four recording threads race the snapshot/exposition path; the final
  // merged state must account for every call. This is the suite
  // ThreadSanitizer runs against the telemetry locks and atomics.
  constexpr int kThreads = 4, kCallsPerThread = 50;
  std::atomic<bool> done{false};
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([t] {
      obs::telemetry_register_thread("e2e-recorder-" + std::to_string(t));
      run_burst(kCallsPerThread, 24, 1);
    });
  }
  std::uint64_t snapshots = 0;
  while (!done.load(std::memory_order_relaxed)) {
    const auto snap = obs::telemetry_snapshot();
    (void)obs::telemetry_render_json();
    ++snapshots;
    if (snap.total_calls >= kThreads * kCallsPerThread) break;
    if (snapshots > 100000) break;  // liveness backstop
  }
  for (auto& th : recorders) th.join();
  done.store(true, std::memory_order_relaxed);

  const auto snap = obs::telemetry_snapshot();
  EXPECT_EQ(snap.total_calls, static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  EXPECT_EQ(snap.flight_recorded, static_cast<std::uint64_t>(kThreads * kCallsPerThread));
}

// ---- C API mirror --------------------------------------------------------

TEST_F(TelemetryE2E, CapiSummaryAndKnobs) {
  EXPECT_EQ(armgemm_telemetry_enabled(), 1);
  run_burst(40, 48, 1);

  armgemm_latency_summary all{};
  armgemm_telemetry_latency(-1, &all);
  EXPECT_EQ(all.calls, 40u);
  EXPECT_GT(all.p50_seconds, 0.0);
  EXPECT_LE(all.p50_seconds, all.p95_seconds);
  EXPECT_LE(all.p95_seconds, all.p99_seconds);
  EXPECT_LE(all.p99_seconds, all.max_seconds);
  EXPECT_GT(all.mean_seconds, 0.0);
  EXPECT_GT(all.mean_efficiency, 0.0);

  // Per-kind filter: the kinds this burst never produced stay empty.
  const auto burst_kind = obs::ShapeClass::classify(48, 48, 48).kind;
  armgemm_latency_summary one{};
  armgemm_telemetry_latency(static_cast<int>(burst_kind), &one);
  EXPECT_EQ(one.calls, 40u);
  armgemm_latency_summary large{};
  armgemm_telemetry_latency(3, &large);
  EXPECT_EQ(large.calls, 0u);

  double fast = 0, ref = 0;
  EXPECT_EQ(armgemm_telemetry_drift_ewma(-1, &fast, &ref), 1);
  EXPECT_GT(fast, 0.0);
  EXPECT_GT(ref, 0.0);
  (void)armgemm_telemetry_anomaly_count();  // callable; count is load-dependent

  const long long depth = armgemm_get_flight_depth();
  armgemm_set_flight_depth(32);
  EXPECT_EQ(armgemm_get_flight_depth(), 32);
  armgemm_set_flight_depth(depth);

  const double thr = armgemm_get_drift_threshold();
  armgemm_set_drift_threshold(0.5);
  EXPECT_DOUBLE_EQ(armgemm_get_drift_threshold(), 0.5);
  armgemm_set_drift_threshold(-1.0);  // non-positive: falls back to default
  EXPECT_DOUBLE_EQ(armgemm_get_drift_threshold(), 0.25);
  armgemm_set_drift_threshold(thr);
}

TEST_F(TelemetryE2E, CapiRenderSnprintfContract) {
  run_burst(3, 32, 1);

  const long long full = armgemm_metrics_render(0, nullptr, 0);
  ASSERT_GT(full, 0);
  std::vector<char> buf(static_cast<std::size_t>(full) + 1, '\x7f');
  EXPECT_EQ(armgemm_metrics_render(0, buf.data(), buf.size()), full);
  EXPECT_EQ(buf[static_cast<std::size_t>(full)], '\0');
  const std::string prom(buf.data());
  EXPECT_EQ(static_cast<long long>(prom.size()), full);
  EXPECT_NE(prom.find("armgemm_calls_total"), std::string::npos);

  // Truncation: still returns the full size, still NUL-terminates.
  char small_buf[8];
  EXPECT_EQ(armgemm_metrics_render(0, small_buf, sizeof small_buf), full);
  EXPECT_EQ(small_buf[7], '\0');
  EXPECT_EQ(prom.compare(0, 7, small_buf), 0);

  // The JSON document embeds uptime_seconds, so its exact length can
  // drift between the sizing call and the fill call; size with slack and
  // check the returned length against the bytes actually written.
  const long long json_full = armgemm_metrics_render(1, nullptr, 0);
  ASSERT_GT(json_full, 0);
  std::vector<char> jbuf(static_cast<std::size_t>(json_full) + 256);
  const long long json_len = armgemm_metrics_render(1, jbuf.data(), jbuf.size());
  ASSERT_GT(json_len, 0);
  ASSERT_LT(json_len, static_cast<long long>(jbuf.size()));
  EXPECT_EQ(std::string(jbuf.data()).size(), static_cast<std::size_t>(json_len));
  std::string err;
  const auto doc = ag::JsonValue::parse(jbuf.data(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc["schema"].as_string(), "armgemm-telemetry/1");

  EXPECT_LT(armgemm_metrics_render(2, nullptr, 0), 0);  // unknown format
}

TEST(TelemetryDisabled, HotPathStaysCold) {
  if (!obs::stats_compiled_in) GTEST_SKIP() << "built with -DARMGEMM_STATS=OFF";
  obs::telemetry_disable();
  obs::telemetry_reset();
  ASSERT_FALSE(obs::telemetry_active());

  Context ctx(ag::KernelShape{8, 6}, 1);
  auto a = ag::random_matrix(32, 32, 501);
  auto b = ag::random_matrix(32, 32, 502);
  auto c = ag::random_matrix(32, 32, 503);
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 32, 32, 32, 1.0, a.data(),
            a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(), ctx);

  const auto snap = obs::telemetry_snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.total_calls, 0u);
  EXPECT_EQ(snap.flight_recorded, 0u);
}
