// The observability layer must be trustworthy before it can steer tuning:
// counters are exact on tiny known shapes (they equal the blocking
// arithmetic), aggregate correctly across pool threads, report all-zero
// with no side effects when disabled, and the JSON/tracer emission is
// well-formed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "capi/armgemm_cblas.h"
#include "common/knobs.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "obs/expected.hpp"
#include "obs/gemm_stats.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"
#include "scoped_knobs.hpp"

using ag::index_t;

namespace {

ag::BlockSizes tiny_blocks(int mr, int nr) {
  ag::BlockSizes bs;
  bs.mr = mr;
  bs.nr = nr;
  bs.kc = 8;
  bs.mc = 16;
  bs.nc = 12;
  return bs;
}

void run_dgemm(const ag::Context& ctx, index_t m, index_t n, index_t k, double alpha = 1.0,
               double beta = 1.0) {
  auto a = ag::random_matrix(m, k, 1);
  auto b = ag::random_matrix(k, n, 2);
  auto c = ag::random_matrix(m, n, 3);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, alpha,
            a.data(), std::max<index_t>(a.ld(), 1), b.data(), std::max<index_t>(b.ld(), 1),
            beta, c.data(), std::max<index_t>(c.ld(), 1), ctx);
}

void expect_counts_match(const ag::obs::LayerCounters& got, const ag::obs::LayerCounters& want,
                         bool check_pack_b_calls, const std::string& label) {
  EXPECT_EQ(got.gemm_calls, want.gemm_calls) << label;
  EXPECT_EQ(got.pack_a_calls, want.pack_a_calls) << label;
  if (check_pack_b_calls) EXPECT_EQ(got.pack_b_calls, want.pack_b_calls) << label;
  EXPECT_EQ(got.gebp_calls, want.gebp_calls) << label;
  EXPECT_EQ(got.kernel_calls, want.kernel_calls) << label;
  EXPECT_EQ(got.pack_a_bytes, want.pack_a_bytes) << label;
  EXPECT_EQ(got.pack_b_bytes, want.pack_b_bytes) << label;
  EXPECT_EQ(got.c_bytes, want.c_bytes) << label;
  EXPECT_DOUBLE_EQ(got.flops, want.flops) << label;
}

TEST(ObsStats, ExactCountersOnTinyShapes) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  const ag::BlockSizes bs = tiny_blocks(8, 6);
  ctx.set_block_sizes(bs);

  // Shapes chosen to exercise exact fits, edge tiles, and sub-block sizes.
  const index_t shapes[][3] = {{16, 12, 8},  {16, 12, 16}, {17, 13, 9}, {1, 1, 1},
                               {8, 6, 8},    {33, 25, 20}, {5, 40, 3},  {40, 5, 24}};
  for (const auto& s : shapes) {
    ag::obs::GemmStats stats;
    ctx.set_stats(&stats);
    run_dgemm(ctx, s[0], s[1], s[2]);
    ctx.set_stats(nullptr);
    const auto want = ag::obs::expected_gemm_counters(s[0], s[1], s[2], bs);
    std::ostringstream label;
    label << s[0] << "x" << s[1] << "x" << s[2];
    expect_counts_match(stats.totals(), want, /*check_pack_b_calls=*/true, label.str());
    EXPECT_GT(stats.totals().total_seconds, 0.0);
  }
}

TEST(ObsStats, ByHandArithmeticOneBlock) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  // 16x12x8 with kc=8, mc=16, nc=12 is exactly one (jj, kk, ii) iteration:
  // one B panel of ceil(12/6)=2 slivers, one A block of ceil(16/8)=2
  // slivers, one GEBP call dispatching 2*2 register kernels. The shape is
  // below the default fast-path threshold, so pin it to the packed path.
  agtest::ScopedSmallMnk pack_path(0);
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ctx.set_block_sizes(tiny_blocks(8, 6));
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, 16, 12, 8);
  const auto t = stats.totals();
  EXPECT_EQ(t.pack_a_calls, 1u);
  EXPECT_EQ(t.pack_b_calls, 1u);
  EXPECT_EQ(t.gebp_calls, 1u);
  EXPECT_EQ(t.kernel_calls, 4u);
  EXPECT_EQ(t.pack_a_bytes, 16u * 8u * 8u);        // mc*kc doubles
  EXPECT_EQ(t.pack_b_bytes, 8u * 12u * 8u);        // kc*nc doubles
  EXPECT_EQ(t.c_bytes, 2u * 16u * 12u * 8u);       // C read + write
  EXPECT_DOUBLE_EQ(t.flops, 2.0 * 16 * 12 * 8);
}

TEST(ObsStats, ByHandArithmeticSmallFastPath) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  // 16x12x8 sits under the threshold: one small_gemm region, no packing,
  // no GEBP, and C traffic of one read + one write of the full matrix.
  agtest::ScopedSmallMnk fast_path(32);
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ctx.set_block_sizes(tiny_blocks(8, 6));
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, 16, 12, 8);
  const auto t = stats.totals();
  EXPECT_EQ(t.gemm_calls, 1u);
  EXPECT_EQ(t.small_calls, 1u);
  EXPECT_EQ(t.pack_a_calls, 0u);
  EXPECT_EQ(t.pack_b_calls, 0u);
  EXPECT_EQ(t.gebp_calls, 0u);
  EXPECT_EQ(t.kernel_calls, 0u);
  EXPECT_EQ(t.pack_a_bytes, 0u);
  EXPECT_EQ(t.pack_b_bytes, 0u);
  EXPECT_EQ(t.c_bytes, 2u * 16u * 12u * 8u);
  EXPECT_GT(t.small_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.flops, 2.0 * 16 * 12 * 8);
}

TEST(ObsStats, DegenerateCallsRecordNoTraffic) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, 4, 4, 0);              // k == 0: pure beta-scale
  run_dgemm(ctx, 4, 4, 4, /*alpha=*/0.0);  // alpha == 0: pure beta-scale
  const auto t = stats.totals();
  EXPECT_EQ(t.gemm_calls, 2u);
  EXPECT_EQ(t.pack_a_calls, 0u);
  EXPECT_EQ(t.pack_b_calls, 0u);
  EXPECT_EQ(t.gebp_calls, 0u);
  EXPECT_DOUBLE_EQ(t.flops, 0.0);
}

TEST(ObsStats, ParallelAggregationMatchesSerial) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  const index_t m = 180, n = 96, k = 64;
  const ag::BlockSizes bs = tiny_blocks(8, 6);

  ag::Context serial(ag::KernelShape{8, 6}, 1);
  serial.set_block_sizes(bs);
  ag::obs::GemmStats serial_stats;
  serial.set_stats(&serial_stats);
  run_dgemm(serial, m, n, k);

  ag::Context parallel(ag::KernelShape{8, 6}, 4);
  parallel.set_block_sizes(bs);
  ag::obs::GemmStats parallel_stats;
  parallel.set_stats(&parallel_stats);
  run_dgemm(parallel, m, n, k);

  // Work totals are path-independent; only pack_b_calls (whole panels vs
  // per-rank sliver ranges) legitimately differs.
  const auto want = ag::obs::expected_gemm_counters(m, n, k, bs);
  expect_counts_match(serial_stats.totals(), want, /*check_pack_b_calls=*/true, "serial");
  expect_counts_match(parallel_stats.totals(), want, /*check_pack_b_calls=*/false, "parallel");

  // The work must actually have been spread over several ranks.
  EXPECT_GT(parallel_stats.per_thread().size(), 1u);
  std::uint64_t summed = 0;
  for (const auto& th : parallel_stats.per_thread()) summed += th.gebp_calls;
  EXPECT_EQ(summed, want.gebp_calls);
}

TEST(ObsStats, NoCollectorMeansNoRecordingAndNoSideEffects) {
  // Whether or not stats are compiled in: a context without a collector
  // must leave a bystander collector untouched, and results identical.
  ag::obs::GemmStats stats;
  ag::Context ctx(ag::KernelShape{8, 6}, 1);

  const index_t m = 32, n = 24, k = 16;
  auto a = ag::random_matrix(m, k, 11);
  auto b = ag::random_matrix(k, n, 12);
  auto c_plain = ag::random_matrix(m, n, 13);
  ag::Matrix<double> c_attached(c_plain);

  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.0,
            a.data(), a.ld(), b.data(), b.ld(), 1.0, c_plain.data(), c_plain.ld(), ctx);

  const auto t = stats.totals();
  EXPECT_EQ(t.gemm_calls, 0u);
  EXPECT_EQ(t.pack_a_bytes + t.pack_b_bytes + t.c_bytes, 0u);
  EXPECT_DOUBLE_EQ(t.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.flops, 0.0);

  // Attaching a collector must not change numerical results.
  ctx.set_stats(&stats);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.0,
            a.data(), a.ld(), b.data(), b.ld(), 1.0, c_attached.data(), c_attached.ld(), ctx);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) ASSERT_EQ(c_plain(i, j), c_attached(i, j));
}

TEST(ObsStats, CompiledOutBuildStaysAllZero) {
  if (ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled in";
  // ARMGEMM_STATS_DISABLED: even an attached collector records nothing.
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  EXPECT_EQ(ctx.stats(), nullptr);
  run_dgemm(ctx, 32, 24, 16);
  EXPECT_EQ(stats.totals().gemm_calls, 0u);
  EXPECT_DOUBLE_EQ(stats.totals().flops, 0.0);
}

TEST(ObsStats, ResetZeroesEverything) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, 32, 24, 16);
  ASSERT_GT(stats.totals().gemm_calls, 0u);
  stats.reset();
  const auto t = stats.totals();
  EXPECT_EQ(t.gemm_calls + t.pack_a_calls + t.pack_b_calls + t.gebp_calls + t.kernel_calls,
            0u);
  EXPECT_DOUBLE_EQ(t.total_seconds + t.flops + t.pack_a_seconds + t.pack_b_seconds +
                       t.gebp_seconds + t.barrier_seconds,
                   0.0);
}

TEST(ObsStats, JsonContainsCountersAndDerivedMetrics) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, 32, 24, 16);
  const std::string json = stats.to_json();
  for (const char* key : {"\"totals\"", "\"threads\"", "\"pack_a_bytes\"", "\"gamma\"",
                          "\"gflops\"", "\"kernel_calls\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
}

TEST(ObsStats, TracerRecordsRegionsAndEmitsChromeTraceJson) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 2);
  ag::obs::GemmStats stats;
  ag::obs::Tracer tracer;
  stats.set_tracer(&tracer);
  ctx.set_stats(&stats);
  run_dgemm(ctx, 96, 48, 32);
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  const std::string json = tracer.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  for (const char* key : {"\"dgemm\"", "\"pack_b\"", "\"gebp\"", "\"ph\":\"X\"", "\"tid\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing";
  // Chrome-trace polish: process/thread metadata events plus block
  // ordinals on the instrumented regions.
  for (const char* key : {"\"ph\":\"M\"", "\"process_name\"", "\"thread_name\"",
                          "\"armgemm\"", "rank 0 (driver)", "\"args\"", "\"jc\":0",
                          "\"ic\":0", "\"pc\":0"})
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsStats, ReportTablesRender) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  const ag::BlockSizes bs = tiny_blocks(8, 6);
  ctx.set_block_sizes(bs);
  ag::obs::GemmStats stats;
  ctx.set_stats(&stats);
  run_dgemm(ctx, 64, 48, 32);
  const std::string report =
      ag::obs::format_report(stats.totals(), 64, 48, 32, bs);
  for (const char* key : {"pack-A", "pack-B", "GEBP", "gamma", "measured vs", "PREA", "PREB"})
    EXPECT_NE(report.find(key), std::string::npos) << key << " missing in:\n" << report;
  // Counter rows must agree exactly, so every delta prints as 0.00%.
  EXPECT_EQ(report.find("nan"), std::string::npos);
}

TEST(ObsStatsCapi, EnableCollectRoundTrip) {
  armgemm_stats_reset();
  ASSERT_EQ(armgemm_stats_enabled(), 0);

  // Pin the packed path through the C API (24x20x16 would otherwise take
  // the small-matrix fast path and record no kernel calls); doubles as a
  // round-trip test of the knob itself.
  const long long prev_small = armgemm_get_small_mnk();
  armgemm_set_small_mnk(0);
  ASSERT_EQ(armgemm_get_small_mnk(), 0ll);

  // Disabled: nothing is recorded.
  {
    auto a = ag::random_matrix(24, 16, 21), b = ag::random_matrix(16, 20, 22),
         c = ag::random_matrix(24, 20, 23);
    cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, 24, 20, 16, 1.0, a.data(),
                static_cast<int>(a.ld()), b.data(), static_cast<int>(b.ld()), 1.0, c.data(),
                static_cast<int>(c.ld()));
  }
  armgemm_stats_snapshot snap;
  armgemm_stats_get(&snap);
  EXPECT_EQ(snap.gemm_calls, 0ull);

  armgemm_stats_enable();
  ASSERT_EQ(armgemm_stats_enabled(), 1);
  {
    auto a = ag::random_matrix(24, 16, 24), b = ag::random_matrix(16, 20, 25),
         c = ag::random_matrix(24, 20, 26);
    cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, 24, 20, 16, 1.0, a.data(),
                static_cast<int>(a.ld()), b.data(), static_cast<int>(b.ld()), 1.0, c.data(),
                static_cast<int>(c.ld()));
  }
  armgemm_stats_get(&snap);
  armgemm_stats_disable();

  if (ag::obs::stats_compiled_in) {
    EXPECT_EQ(snap.gemm_calls, 1ull);
    EXPECT_DOUBLE_EQ(snap.flops, 2.0 * 24 * 20 * 16);
    EXPECT_GT(snap.kernel_calls, 0ull);
    EXPECT_GT(snap.gamma, 0.0);
  } else {
    EXPECT_EQ(snap.gemm_calls, 0ull);
  }

  const char* path = "test_obs_stats_capi.json";
  ASSERT_EQ(armgemm_stats_write_json(path), 0);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"totals\""), std::string::npos);
  std::remove(path);
  armgemm_stats_reset();
  armgemm_set_small_mnk(prev_small);
  EXPECT_EQ(armgemm_get_small_mnk(), prev_small);
}

// A snapshot taken while calls are in flight must never mix the fields
// of one recording: add_call updates gemm_calls, flops and total_seconds
// inside one seqlock write section, so every snapshot sees either all of
// a call's contributions or none. The writer records calls with flops
// exactly 2.0 and seconds exactly 1.0 per call; any snapshot where
// flops != 2 * gemm_calls (or seconds != gemm_calls) is a torn read of
// the kind the plain relaxed-load snapshot allowed.
TEST(GemmStatsSnapshot, NoTornReadsUnderConcurrentRecording) {
  ag::obs::GemmStats stats(1);
  ag::obs::ThreadSlot& slot = stats.slot(0);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    // do-while: even if the reader finishes its iterations before this
    // thread is first scheduled, at least one call gets recorded.
    do {
      slot.add_call(2.0, 1.0);
      // Brief quiescent window between calls (as real traffic has), so
      // the bounded-retry reader can always find a consistent read.
      for (volatile int spin = 0; spin < 64; ++spin) {
      }
    } while (!stop.load(std::memory_order_relaxed));
  });

  int checked = 0;
  for (int i = 0; i < 20000; ++i) {
    const ag::obs::LayerCounters c = stats.totals();
    const double calls = static_cast<double>(c.gemm_calls);
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * calls)
        << "snapshot tore between flops and gemm_calls at iteration " << i;
    EXPECT_DOUBLE_EQ(c.total_seconds, calls)
        << "snapshot tore between total_seconds and gemm_calls at iteration " << i;
    ++checked;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(checked, 20000);
  EXPECT_GT(stats.totals().gemm_calls, 0ull);
}

// Same property across reset(): a reset is itself a seqlock write, so a
// concurrent snapshot lands fully before or fully after it — never a mix
// of zeroed and pre-reset fields.
TEST(GemmStatsSnapshot, ResetIsAtomicAgainstSnapshots) {
  ag::obs::GemmStats stats(1);
  ag::obs::ThreadSlot& slot = stats.slot(0);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      slot.add_call(2.0, 1.0);
      slot.reset();
      for (volatile int spin = 0; spin < 64; ++spin) {
      }
    }
  });

  for (int i = 0; i < 20000; ++i) {
    const ag::obs::LayerCounters c = stats.totals();
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * static_cast<double>(c.gemm_calls));
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
