// DGEMM timing model tests: kernel ceilings reproduce the paper's
// ordering and magnitudes, efficiency rises with matrix size and
// saturates near the paper's peaks, threading behaviour matches Figure
// 12/14 qualitatively, rotation and block-size ablations move in the
// paper's direction (Figure 13, Table VI).
#include <gtest/gtest.h>

#include "common/check.hpp"

#include "core/block_sizes.hpp"
#include "model/machine.hpp"
#include "sim/timing.hpp"

using ag::BlockSizes;
using ag::KernelShape;
using ag::sim::DgemmEstimate;
using ag::sim::estimate_dgemm;
using ag::sim::kernel_efficiency_ceiling;
using ag::sim::TimingOptions;

namespace {
const ag::model::MachineConfig& mach() { return ag::model::xgene(); }
}  // namespace

TEST(KernelCeiling, OrderingAcrossShapes) {
  const double e86 = kernel_efficiency_ceiling(mach(), {8, 6});
  const double e84 = kernel_efficiency_ceiling(mach(), {8, 4});
  const double e44 = kernel_efficiency_ceiling(mach(), {4, 4});
  const double e55 = kernel_efficiency_ceiling(mach(), {5, 5});
  EXPECT_GT(e86, e84);
  EXPECT_GT(e84, e55);
  EXPECT_GT(e55, e44);
  // The 8x6 ceiling sits near the paper's 91.5% micro-benchmark bound
  // (slightly below: the real kernel also issues prefetches).
  EXPECT_GT(e86, 0.86);
  EXPECT_LT(e86, 0.93);
  EXPECT_NEAR(e44, 0.80, 0.04);
}

TEST(KernelCeiling, RotationAblation) {
  TimingOptions with;
  TimingOptions without;
  without.rotate = false;
  const double e_rot = kernel_efficiency_ceiling(mach(), {8, 6}, with);
  const double e_fix = kernel_efficiency_ceiling(mach(), {8, 6}, without);
  EXPECT_GT(e_rot, e_fix);            // Figure 13's direction
  EXPECT_LT(e_rot - e_fix, 0.15);     // and a plausible magnitude
}

TEST(Estimate, EfficiencyRisesAndSaturatesSerial) {
  const BlockSizes bs = ag::paper_block_sizes({8, 6}, 1);
  double prev = 0;
  for (std::int64_t size : {256, 512, 1024, 2048, 4096}) {
    const DgemmEstimate e = estimate_dgemm(mach(), bs, size, 1);
    EXPECT_GT(e.efficiency, prev * 0.995) << size;  // essentially monotone
    prev = e.efficiency;
  }
  // Saturation near the paper's 87.2% serial peak.
  EXPECT_GT(prev, 0.82);
  EXPECT_LT(prev, 0.92);
}

TEST(Estimate, SerialKernelOrderingMatchesFigure11) {
  const std::int64_t size = 2048;
  const double e86 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 1), size, 1).efficiency;
  const double e84 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 4}, 1), size, 1).efficiency;
  const double e44 =
      estimate_dgemm(mach(), ag::paper_block_sizes({4, 4}, 1), size, 1).efficiency;
  const double e55 =
      estimate_dgemm(mach(), ag::paper_block_sizes({5, 5}, 1), size, 1).efficiency;
  EXPECT_GT(e86, e84);
  EXPECT_GT(e84, e55);
  EXPECT_GT(e55, e44);
}

TEST(Estimate, GflopsScaleWithThreads) {
  const std::int64_t size = 3072;
  const double g1 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 1), size, 1).gflops;
  const double g2 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 2), size, 2).gflops;
  const double g4 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 4), size, 4).gflops;
  const double g8 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 8), size, 8).gflops;
  EXPECT_GT(g2, g1 * 1.7);
  EXPECT_GT(g4, g2 * 1.6);
  EXPECT_GT(g8, g4 * 1.5);
  // Eight-thread peak in the neighbourhood of the paper's 32.7 Gflops.
  EXPECT_GT(g8, 28.0);
  EXPECT_LT(g8, 38.4);
}

TEST(Estimate, ParallelEfficiencyBelowSerial) {
  // Table V: 85.3% (8 threads) < 87.2% (1 thread) for 8x6.
  const std::int64_t size = 4096;
  const double e1 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 1), size, 1).efficiency;
  const double e8 =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 8), size, 8).efficiency;
  EXPECT_LT(e8, e1);
  EXPECT_GT(e8, e1 - 0.10);
}

TEST(Estimate, SmallSizesLoseEfficiencyUnderThreads) {
  // Figure 12: at small sizes the 8-thread curve sits far below peak.
  const double e_small =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 8), 256, 8).efficiency;
  const double e_big =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 8), 4096, 8).efficiency;
  EXPECT_LT(e_small, e_big - 0.08);
}

TEST(Estimate, Table6SerialBlockSizes) {
  // 512x56x1920 (ours) vs 320x96x1536 (Goto heuristic): ours at least as
  // good serially (paper: 87.2% vs 86.4%).
  const std::int64_t size = 4096;
  const BlockSizes ours = ag::paper_block_sizes({8, 6}, 1);
  BlockSizes goto_bs = ours;
  goto_bs.kc = 320;
  goto_bs.mc = 96;
  goto_bs.nc = 1536;
  const double e_ours = estimate_dgemm(mach(), ours, size, 1).efficiency;
  const double e_goto = estimate_dgemm(mach(), goto_bs, size, 1).efficiency;
  EXPECT_GE(e_ours, e_goto - 0.002);
}

TEST(Estimate, Table6ThreadedOversizedMcPenalised) {
  // With eight threads, keeping the serial mc=56 overflows the shared L2
  // (2 x 56 x 512 x 8 bytes > 7/8 of 256K): the paper measures 85.3% ->
  // 80.4%. The model must show a clear drop.
  const std::int64_t size = 4096;
  const BlockSizes good = ag::paper_block_sizes({8, 6}, 8);  // mc=24
  BlockSizes bad = good;
  bad.mc = 56;
  bad.nc = 1920;
  const double e_good = estimate_dgemm(mach(), good, size, 8).efficiency;
  const double e_bad = estimate_dgemm(mach(), bad, size, 8).efficiency;
  EXPECT_GT(e_good, e_bad + 0.02);
}

TEST(Estimate, BreakdownComponentsPositiveAndConsistent) {
  const DgemmEstimate e =
      estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 1), 1024, 1);
  EXPECT_GT(e.kernel_cycles, 0);
  EXPECT_GT(e.c_update_cycles, 0);
  EXPECT_GT(e.pack_cycles, 0);
  EXPECT_EQ(e.sync_cycles, 0);  // serial
  EXPECT_GT(e.gflops, 0);
  EXPECT_GT(e.seconds, 0);
  EXPECT_GT(e.kernel_ceiling, 0.8);
}

TEST(Estimate, RectangularShapes) {
  const BlockSizes bs = ag::paper_block_sizes({8, 6}, 1);
  const DgemmEstimate tall =
      ag::sim::estimate_dgemm_mnk(mach(), bs, 8192, 256, 1024, 1);
  const DgemmEstimate wide =
      ag::sim::estimate_dgemm_mnk(mach(), bs, 256, 8192, 1024, 1);
  EXPECT_GT(tall.efficiency, 0.5);
  EXPECT_GT(wide.efficiency, 0.5);
}

TEST(Estimate, ValidatesArguments) {
  EXPECT_THROW(estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 1), 128, 0),
               ag::InvalidArgument);
  EXPECT_THROW(estimate_dgemm(mach(), ag::paper_block_sizes({8, 6}, 1), 0, 1),
               ag::InvalidArgument);
}
