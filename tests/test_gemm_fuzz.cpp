// Randomized property/fuzz pass over the optimized dgemm.
//
// Each iteration draws a random problem — m/n/k including 0 and 1, all
// four transpose combinations, both storage layouts, alpha/beta from
// {0, 1, -1, random}, odd leading-dimension padding, serial and parallel
// contexts across kernel shapes — and checks the optimized result against
// reference_dgemm elementwise with a Higham-style backward-error bound:
//
//   |Copt - Cref|_ij <= 2 * gamma_{k+2} * (|alpha| (|opA||opB|)_ij
//                                          + |beta C0|_ij),
//   gamma_n = n*u / (1 - n*u)   (Higham, ASNA 2e, Ch. 3),
//
// i.e. both results lie within the error of *some* correctly rounded
// summation order, so their distance is at most twice that radius — no
// fixed epsilon anywhere. Out-of-bounds reads are caught by poisoning
// every padding element (beyond the logical rows/cols and in the ld gap)
// with NaN: one stray load poisons the result and trips the bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "blas/reference_gemm.hpp"
#include "common/rng.hpp"
#include "core/gemm.hpp"

using ag::index_t;
using ag::Layout;
using ag::Trans;

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// A stored matrix in either layout with padded leading dimension; every
/// element not in the logical rows x cols region is NaN.
struct Operand {
  std::vector<double> data;
  index_t rows = 0, cols = 0, ld = 0;
  Layout layout = Layout::ColMajor;

  double& at(index_t i, index_t j) {
    return layout == Layout::ColMajor ? data[static_cast<std::size_t>(i + j * ld)]
                                      : data[static_cast<std::size_t>(i * ld + j)];
  }
  double at(index_t i, index_t j) const {
    return layout == Layout::ColMajor ? data[static_cast<std::size_t>(i + j * ld)]
                                      : data[static_cast<std::size_t>(i * ld + j)];
  }
};

Operand make_operand(Layout layout, index_t rows, index_t cols, index_t pad,
                     ag::Xoshiro256& rng) {
  Operand op;
  op.layout = layout;
  op.rows = rows;
  op.cols = cols;
  const index_t minor = layout == Layout::ColMajor ? rows : cols;
  const index_t major = layout == Layout::ColMajor ? cols : rows;
  op.ld = std::max<index_t>(minor + pad, 1);
  op.data.assign(static_cast<std::size_t>(op.ld * std::max<index_t>(major, 1)), kNaN);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) op.at(i, j) = rng.uniform(-1.0, 1.0);
  return op;
}

Operand abs_of(const Operand& src) {
  Operand op = src;
  for (index_t i = 0; i < op.rows; ++i)
    for (index_t j = 0; j < op.cols; ++j) op.at(i, j) = std::fabs(src.at(i, j));
  return op;
}

double pick_scalar(ag::Xoshiro256& rng) {
  switch (rng.next_below(4)) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return -1.0;
    default: return rng.uniform(-2.0, 2.0);
  }
}

/// gamma_n = n*u/(1 - n*u): the relative error accrued by n rounded ops.
double higham_gamma(std::int64_t n) {
  const double u = std::numeric_limits<double>::epsilon() / 2.0;
  const double nu = static_cast<double>(n) * u;
  return nu / (1.0 - nu);
}

TEST(GemmFuzz, RandomizedAgainstReferenceWithBackwardErrorBound) {
  ag::Xoshiro256 rng(0xf00df00d);
  const index_t dims[] = {0, 1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 24, 31, 33, 48, 57, 64};
  const index_t ndims = static_cast<index_t>(sizeof(dims) / sizeof(dims[0]));
  const index_t pads[] = {0, 1, 3, 7};

  // Contexts are reused so the fuzz loop doesn't rebuild thread pools.
  ag::Context contexts[] = {
      ag::Context(ag::KernelShape{8, 6}, 1), ag::Context(ag::KernelShape{8, 4}, 1),
      ag::Context(ag::KernelShape{4, 4}, 1), ag::Context(ag::KernelShape{8, 6}, 2),
      ag::Context(ag::KernelShape{8, 6}, 4)};
  const int ncontexts = static_cast<int>(sizeof(contexts) / sizeof(contexts[0]));

  int checked_elements = 0;
  for (int iter = 0; iter < 220; ++iter) {
    const index_t m = dims[rng.next_below(ndims)];
    const index_t n = dims[rng.next_below(ndims)];
    const index_t k = dims[rng.next_below(ndims)];
    const Trans ta = rng.next_below(2) ? Trans::Trans : Trans::NoTrans;
    const Trans tb = rng.next_below(2) ? Trans::Trans : Trans::NoTrans;
    const Layout layout = rng.next_below(2) ? Layout::RowMajor : Layout::ColMajor;
    const double alpha = pick_scalar(rng);
    const double beta = pick_scalar(rng);
    const ag::Context& ctx = contexts[rng.next_below(ncontexts)];

    const index_t a_rows = ta == Trans::NoTrans ? m : k;
    const index_t a_cols = ta == Trans::NoTrans ? k : m;
    const index_t b_rows = tb == Trans::NoTrans ? k : n;
    const index_t b_cols = tb == Trans::NoTrans ? n : k;

    Operand a = make_operand(layout, a_rows, a_cols, pads[rng.next_below(4)], rng);
    Operand b = make_operand(layout, b_rows, b_cols, pads[rng.next_below(4)], rng);
    Operand c0 = make_operand(layout, m, n, pads[rng.next_below(4)], rng);

    Operand c_ref = c0;
    ag::reference_dgemm(layout, ta, tb, m, n, k, alpha, a.data.data(), a.ld, b.data.data(),
                        b.ld, beta, c_ref.data.data(), c_ref.ld);

    Operand c_opt = c0;
    ag::dgemm(layout, ta, tb, m, n, k, alpha, a.data.data(), a.ld, b.data.data(), b.ld, beta,
              c_opt.data.data(), c_opt.ld, ctx);

    // |opA| |opB|, the matrix the componentwise bound scales with.
    Operand p = make_operand(layout, m, n, 0, rng);
    Operand a_abs = abs_of(a), b_abs = abs_of(b);
    ag::reference_dgemm(layout, ta, tb, m, n, k, 1.0, a_abs.data.data(), a_abs.ld,
                        b_abs.data.data(), b_abs.ld, 0.0, p.data.data(), p.ld);

    const double g = higham_gamma(k + 2);
    std::ostringstream what;
    what << "iter " << iter << ": " << m << "x" << n << "x" << k << " "
         << ag::to_string(ta) << ag::to_string(tb) << " " << ag::to_string(layout)
         << " alpha=" << alpha << " beta=" << beta << " lda=" << a.ld << " ldb=" << b.ld
         << " ldc=" << c_opt.ld;
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        const double ref = c_ref.at(i, j);
        const double opt = c_opt.at(i, j);
        ASSERT_FALSE(std::isnan(opt)) << what.str() << " C(" << i << "," << j
                                      << ") is NaN: stray read of poisoned padding?";
        const double bound =
            2.0 * g * (std::fabs(alpha) * p.at(i, j) + std::fabs(beta * c0.at(i, j)));
        ASSERT_LE(std::fabs(opt - ref), bound)
            << what.str() << " C(" << i << "," << j << ") opt=" << opt << " ref=" << ref;
        ++checked_elements;
      }
    }

    // Padding in C (both the ld gap and everything outside m x n) must
    // never be written: it still holds the NaNs we planted.
    for (std::size_t idx = 0; idx < c_opt.data.size(); ++idx) {
      if (std::isnan(c0.data[idx])) {
        ASSERT_TRUE(std::isnan(c_opt.data[idx]))
            << what.str() << " wrote to padding at flat index " << idx;
      }
    }
  }
  // Make sure the generator actually produced nontrivial work.
  EXPECT_GT(checked_elements, 50000);
}

TEST(GemmFuzz, ZeroDimensionedProblemsAreNoOps) {
  ag::Xoshiro256 rng(42);
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  const index_t cases[][3] = {{0, 5, 3}, {5, 0, 3}, {5, 3, 0}, {0, 0, 0}, {1, 1, 0}};
  for (const auto& shape : cases) {
    const index_t m = shape[0], n = shape[1], k = shape[2];
    Operand a = make_operand(Layout::ColMajor, m, k, 1, rng);
    Operand b = make_operand(Layout::ColMajor, k, n, 1, rng);
    Operand c0 = make_operand(Layout::ColMajor, m, n, 1, rng);
    Operand c_ref = c0, c_opt = c0;
    ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.5,
                        a.data.data(), a.ld, b.data.data(), b.ld, 0.5, c_ref.data.data(),
                        c_ref.ld);
    ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.5, a.data.data(),
              a.ld, b.data.data(), b.ld, 0.5, c_opt.data.data(), c_opt.ld, ctx);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) ASSERT_EQ(c_ref.at(i, j), c_opt.at(i, j));
  }
}

}  // namespace
