// PanelSchedule property tests: the ticket space must tile each C panel
// exactly (full coverage, no overlap), keep blocks (mc, nr)-aligned except
// at the ragged edges, engage the 2-D column-group fallback exactly when
// there are fewer mc row blocks than ranks, and map sliver0 consistently
// onto the packed-B layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "core/schedule.hpp"

using ag::GemmBlock;
using ag::index_t;
using ag::PanelSchedule;

namespace {

// Marks every (row, col) cell claimed by some ticket and checks exact
// single coverage of the m x nc panel.
void expect_exact_tiling(const PanelSchedule& sched, index_t m, index_t nc) {
  std::vector<int> claims(static_cast<std::size_t>(m * nc), 0);
  for (index_t t = 0; t < sched.total_blocks(); ++t) {
    const GemmBlock b = sched.block(t);
    ASSERT_GE(b.ii, 0);
    ASSERT_GT(b.mc, 0);
    ASSERT_LE(b.ii + b.mc, m);
    ASSERT_GE(b.jb, 0);
    ASSERT_GT(b.nb, 0);
    ASSERT_LE(b.jb + b.nb, nc);
    for (index_t j = b.jb; j < b.jb + b.nb; ++j)
      for (index_t i = b.ii; i < b.ii + b.mc; ++i)
        claims[static_cast<std::size_t>(i + j * m)]++;
  }
  for (std::size_t cell = 0; cell < claims.size(); ++cell)
    ASSERT_EQ(claims[cell], 1) << "cell " << cell << " of " << m << "x" << nc;
}

TEST(PanelScheduleTest, TicketsTileThePanelExactly) {
  for (index_t m : {1, 7, 16, 17, 33, 100, 200}) {
    for (index_t nc : {1, 6, 12, 13, 48}) {
      for (int nthreads : {1, 2, 3, 4, 8}) {
        SCOPED_TRACE(testing::Message()
                     << "m=" << m << " nc=" << nc << " threads=" << nthreads);
        const PanelSchedule sched(m, nc, /*mc=*/16, /*nr=*/6, nthreads);
        expect_exact_tiling(sched, m, nc);
      }
    }
  }
}

TEST(PanelScheduleTest, OneDimensionalWhenRowBlocksCoverRanks) {
  // ceil(64/16) = 4 row blocks >= 4 ranks: the schedule must stay 1-D so
  // packing/GEBP counts remain identical to the serial driver.
  const PanelSchedule sched(64, 48, 16, 6, 4);
  EXPECT_EQ(sched.row_blocks(), 4);
  EXPECT_EQ(sched.col_groups(), 1);
  EXPECT_EQ(sched.total_blocks(), 4);
  for (index_t t = 0; t < 4; ++t) {
    const GemmBlock b = sched.block(t);
    EXPECT_EQ(b.ii, t * 16);
    EXPECT_EQ(b.mc, 16);
    EXPECT_EQ(b.jb, 0);
    EXPECT_EQ(b.nb, 48);  // full panel width
    EXPECT_EQ(b.sliver0, 0);
  }
}

TEST(PanelScheduleTest, TwoDimensionalFallbackWhenRowBlocksScarce) {
  // ceil(16/16) = 1 row block < 4 ranks: the nc width must split so every
  // rank can claim work.
  const PanelSchedule sched(16, 48, 16, 6, 4);
  EXPECT_EQ(sched.row_blocks(), 1);
  EXPECT_GT(sched.col_groups(), 1);
  EXPECT_GE(sched.total_blocks(), 4);  // at least one ticket per rank
  expect_exact_tiling(sched, 16, 48);
}

TEST(PanelScheduleTest, ColumnGroupsAreSliverAligned) {
  // Column-group starts must land on nr boundaries and sliver0 must equal
  // jb / nr, so `packed_b + sliver0 * kc * nr` addresses the group's
  // slivers in the sliver-major packed layout.
  for (index_t nc : {6, 11, 12, 13, 30, 48}) {
    for (int nthreads : {2, 4, 8}) {
      const PanelSchedule sched(8, nc, 16, 6, nthreads);
      for (index_t t = 0; t < sched.total_blocks(); ++t) {
        const GemmBlock b = sched.block(t);
        EXPECT_EQ(b.jb % 6, 0) << "nc=" << nc << " t=" << t;
        EXPECT_EQ(b.sliver0, b.jb / 6) << "nc=" << nc << " t=" << t;
        // Interior groups span whole slivers; only the last is ragged.
        if (b.jb + b.nb < nc) EXPECT_EQ(b.nb % 6, 0) << "nc=" << nc << " t=" << t;
      }
    }
  }
}

TEST(PanelScheduleTest, ConsecutiveTicketsShareRowBlocks) {
  // Tickets enumerate column groups within a row block first, so a rank
  // draining adjacent tickets reuses its packed A block.
  const PanelSchedule sched(32, 48, 16, 6, 8);  // 2 row blocks -> 2-D
  ASSERT_GT(sched.col_groups(), 1);
  for (index_t t = 0; t + 1 < sched.total_blocks(); ++t) {
    const GemmBlock a = sched.block(t);
    const GemmBlock b = sched.block(t + 1);
    if ((t + 1) % sched.col_groups() != 0) {
      EXPECT_EQ(a.ii, b.ii) << "t=" << t;  // same row block, next group
    } else {
      EXPECT_LT(a.ii, b.ii) << "t=" << t;  // advance to the next row block
    }
  }
}

TEST(PanelScheduleTest, MoreRanksThanSliversClampsGroups) {
  // nc=6 is a single sliver: it cannot split below one sliver, so the
  // schedule degenerates to 1 column group no matter how many ranks ask.
  const PanelSchedule sched(8, 6, 16, 6, 8);
  EXPECT_EQ(sched.col_groups(), 1);
  EXPECT_EQ(sched.total_blocks(), 1);
  const GemmBlock b = sched.block(0);
  EXPECT_EQ(b.nb, 6);
  EXPECT_EQ(b.mc, 8);
}

TEST(PanelScheduleTest, RaggedEdgesKeepExactSizes) {
  // m=17, nc=13: the last row block is 1 row, the last column group ends
  // at 13 (not rounded up) — C is never padded.
  const PanelSchedule sched(17, 13, 16, 6, 8);
  index_t max_row_end = 0, max_col_end = 0;
  for (index_t t = 0; t < sched.total_blocks(); ++t) {
    const GemmBlock b = sched.block(t);
    max_row_end = std::max(max_row_end, b.ii + b.mc);
    max_col_end = std::max(max_col_end, b.jb + b.nb);
  }
  EXPECT_EQ(max_row_end, 17);
  EXPECT_EQ(max_col_end, 13);
  expect_exact_tiling(sched, 17, 13);
}

TEST(PanelScheduleTest, InvalidArgumentsThrow) {
  EXPECT_THROW(PanelSchedule(0, 12, 16, 6, 2), ag::InvalidArgument);
  EXPECT_THROW(PanelSchedule(16, 0, 16, 6, 2), ag::InvalidArgument);
  EXPECT_THROW(PanelSchedule(16, 12, 0, 6, 2), ag::InvalidArgument);
  EXPECT_THROW(PanelSchedule(16, 12, 16, 0, 2), ag::InvalidArgument);
  EXPECT_THROW(PanelSchedule(16, 12, 16, 6, 0), ag::InvalidArgument);
}

}  // namespace
