// Pipeline model: Table IV reproduction (the paper's LDR:FMLA
// micro-benchmark), peak-bound sanity, dependence stalls, and the rename /
// WAR behaviour that underlies the register-rotation ablation.
#include <gtest/gtest.h>

#include "isa/instruction.hpp"
#include "sim/pipeline.hpp"

using ag::isa::Instr;
using ag::isa::Opcode;
using ag::isa::Program;
using ag::sim::PipelineConfig;
using ag::sim::PipelineResult;
using ag::sim::simulate_ldr_fmla_ratio;
using ag::sim::simulate_program;
using ag::sim::table4_reference;

namespace {
Instr fmla(int dst, int srca, int srcb) {
  Instr i;
  i.op = Opcode::Fmla;
  i.dst = dst;
  i.srca = srca;
  i.srcb = srcb;
  i.lane = 0;
  return i;
}
Instr ldr(int dst) {
  Instr i;
  i.op = Opcode::Ldr;
  i.dst = dst;
  i.stream = ag::isa::Stream::A;
  return i;
}
}  // namespace

TEST(PipelineTest, PureFmlaRunsAtPeak) {
  Program p;
  for (int i = 0; i < 24; ++i) p.instrs.push_back(fmla(8 + i, 8 + (i + 7) % 24, 8 + (i + 13) % 24));
  const PipelineConfig cfg;
  const PipelineResult r = simulate_program(p, 100, cfg);
  EXPECT_NEAR(r.efficiency(cfg.fma_cycles), 1.0, 0.01);
}

TEST(PipelineTest, Table4PointsWithinTolerance) {
  // The two issue-port constants are calibrated against Table IV; every
  // published point must reproduce within 2.5 percentage points.
  const PipelineConfig cfg;
  for (const auto& pt : table4_reference()) {
    const double eff = simulate_ldr_fmla_ratio(pt.ldrs, pt.fmlas, cfg);
    EXPECT_NEAR(eff, pt.efficiency, 0.025)
        << "ratio " << pt.ldrs << ":" << pt.fmlas;
  }
}

TEST(PipelineTest, EfficiencyMonotoneInArithmeticFraction) {
  // Table IV's key observation: a larger share of arithmetic instructions
  // gives higher efficiency.
  const PipelineConfig cfg;
  double prev = 0;
  for (int f = 1; f <= 6; ++f) {
    const double eff = simulate_ldr_fmla_ratio(1, f, cfg);
    EXPECT_GT(eff, prev) << "1:" << f;
    prev = eff;
  }
}

TEST(PipelineTest, KernelMixOrdering) {
  // 1:2 (4x4) < 6:16 (8x4) < 7:24 (8x6): the paper's ceiling ordering.
  const PipelineConfig cfg;
  const double e44 = simulate_ldr_fmla_ratio(1, 2, cfg);
  const double e84 = simulate_ldr_fmla_ratio(6, 16, cfg);
  const double e86 = simulate_ldr_fmla_ratio(7, 24, cfg);
  EXPECT_LT(e44, e84);
  EXPECT_LT(e84, e86);
  EXPECT_NEAR(e86, 0.915, 0.02);  // the paper's upper bound for 8x6
}

TEST(PipelineTest, RawDependenceStalls) {
  // fmla immediately consuming a load's result stalls for the load-use
  // latency; spacing the pair apart hides it.
  Program tight;
  tight.instrs.push_back(ldr(0));
  tight.instrs.push_back(fmla(8, 0, 9));
  Program spaced;
  spaced.instrs.push_back(ldr(0));
  for (int i = 0; i < 6; ++i) spaced.instrs.push_back(fmla(10 + i, 20, 21));
  spaced.instrs.push_back(fmla(8, 0, 9));
  // Single pass: in steady-state loops an OoO core hides the independent
  // load by running it ahead; the stall is a cold-start phenomenon.
  const PipelineConfig cfg;
  const auto rt = simulate_program(tight, 1, cfg);
  const auto rs = simulate_program(spaced, 1, cfg);
  EXPECT_GT(rt.raw_stall_cycles, 0.0);
  EXPECT_NEAR(rs.raw_stall_cycles, 0.0, 1e-9);
}

TEST(PipelineTest, WarStallsOnlyWithoutRename) {
  // ldr overwriting a register just read: free with renaming, delayed
  // without — the paper's Section V-A experiment ("the same efficiencies
  // remain" with renaming on).
  Program p;
  p.instrs.push_back(fmla(8, 0, 1));
  p.instrs.push_back(ldr(0));  // WAR on v0
  PipelineConfig with_rename;
  with_rename.rename = true;
  PipelineConfig without;
  without.rename = false;
  const auto r1 = simulate_program(p, 50, with_rename);
  const auto r2 = simulate_program(p, 50, without);
  EXPECT_NEAR(r1.war_stall_cycles, 0.0, 1e-9);
  EXPECT_GT(r2.war_stall_cycles, 0.0);
  EXPECT_GT(r2.cycles, r1.cycles);
}

TEST(PipelineTest, PrefetchCostsLessThanLoad) {
  Program with_prfm;
  for (int i = 0; i < 8; ++i) with_prfm.instrs.push_back(fmla(8 + i, 20, 21));
  Instr prfm;
  prfm.op = Opcode::Prfm;
  prfm.stream = ag::isa::Stream::A;
  with_prfm.instrs.push_back(prfm);
  Program with_ldr = with_prfm;
  with_ldr.instrs.back() = ldr(0);
  const PipelineConfig cfg;
  EXPECT_LE(simulate_program(with_prfm, 100, cfg).cycles,
            simulate_program(with_ldr, 100, cfg).cycles);
}

TEST(PipelineTest, CalibrationRecoversDefaults) {
  double rms = 0;
  const PipelineConfig fit = ag::sim::calibrate_to_table4(&rms);
  EXPECT_LT(rms, 0.02);  // within 2 points RMS of Table IV
  EXPECT_NEAR(fit.fmla_port, PipelineConfig{}.fmla_port, 0.08);
  EXPECT_NEAR(fit.ldr_port, PipelineConfig{}.ldr_port, 0.08);
}

TEST(PipelineTest, InstructionCountsReported) {
  Program p;
  p.instrs.push_back(ldr(0));
  p.instrs.push_back(fmla(8, 0, 1));
  const auto r = simulate_program(p, 10, PipelineConfig{});
  EXPECT_EQ(r.instructions, 20u);
  EXPECT_EQ(r.fmla, 10u);
  EXPECT_EQ(r.ldr, 10u);
}
