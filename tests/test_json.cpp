// The minimal JSON DOM that reads the library's own reports back (bench
// baselines, PMU dumps): full-grammar happy paths, the documented \u
// degradation, chained lookups on absent keys, and parse errors that
// carry a byte offset instead of silently returning garbage.
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"

using ag::JsonValue;

namespace {

TEST(Json, ParsesScalars) {
  std::string err;
  EXPECT_TRUE(JsonValue::parse("null", &err).is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool(true));
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("  \"ws\"  ").as_string(), "ws");
}

TEST(Json, ParsesNestedStructure) {
  std::string err;
  const JsonValue v = JsonValue::parse(
      R"({"schema":"armgemm-bench/1","reps":3,"ok":true,
          "results":[{"n":128,"eff":0.81},{"n":256,"eff":0.84}]})",
      &err);
  ASSERT_TRUE(v.is_object()) << err;
  EXPECT_EQ(v["schema"].as_string(), "armgemm-bench/1");
  EXPECT_DOUBLE_EQ(v["reps"].as_number(), 3.0);
  EXPECT_TRUE(v["ok"].as_bool());
  ASSERT_TRUE(v["results"].is_array());
  ASSERT_EQ(v["results"].size(), 2u);
  EXPECT_DOUBLE_EQ(v["results"].items()[1]["eff"].as_number(), 0.84);
  EXPECT_TRUE(v.has("schema"));
  EXPECT_FALSE(v.has("missing"));
}

TEST(Json, StringEscapes) {
  const JsonValue v = JsonValue::parse(R"("a\"b\\c\n\t\/d")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\t/d");
  // \u escapes are documented to degrade to '?', not to fail.
  EXPECT_EQ(JsonValue::parse("\"x\\u0041y\"").as_string(), "x?y");
}

TEST(Json, MissingKeysChainToNull) {
  const JsonValue v = JsonValue::parse(R"({"a":{"b":1}})");
  EXPECT_DOUBLE_EQ(v["a"]["b"].as_number(), 1.0);
  // Any depth of absent keys stays a safe null with defaults.
  EXPECT_TRUE(v["a"]["nope"].is_null());
  EXPECT_TRUE(v["x"]["y"]["z"].is_null());
  EXPECT_DOUBLE_EQ(v["x"]["y"].as_number(-7.0), -7.0);
  EXPECT_TRUE(v["x"].as_string().empty());
  // Indexing a non-object (number) also yields null, not a crash.
  EXPECT_TRUE(v["a"]["b"]["deeper"].is_null());
}

TEST(Json, EmptyContainers) {
  const JsonValue obj = JsonValue::parse("{}");
  ASSERT_TRUE(obj.is_object());
  EXPECT_FALSE(obj.has("anything"));
  const JsonValue arr = JsonValue::parse("[]");
  ASSERT_TRUE(arr.is_array());
  EXPECT_EQ(arr.size(), 0u);
}

TEST(Json, ErrorsReportByteOffsets) {
  const char* bad[] = {"",        "{",         "{\"a\":}", "[1,2",      "\"unterminated",
                       "{}extra", "{\"a\" 1}", "tru",      "[1,,2]",    "{1:2}",
                       "nul",     "\"bad\\q\""};
  for (const char* text : bad) {
    std::string err;
    const JsonValue v = JsonValue::parse(text, &err);
    EXPECT_TRUE(v.is_null()) << text;
    EXPECT_NE(err.find("at byte"), std::string::npos) << text << " -> " << err;
  }
}

TEST(Json, TrailingGarbageRejectedWithOffset) {
  std::string err;
  EXPECT_TRUE(JsonValue::parse("{} x", &err).is_null());
  EXPECT_NE(err.find("trailing"), std::string::npos);
  EXPECT_NE(err.find("at byte 3"), std::string::npos) << err;
}

TEST(Json, WrongKindAccessorsReturnDefaults) {
  const JsonValue num = JsonValue::parse("5");
  EXPECT_FALSE(num.is_object());
  EXPECT_TRUE(num.as_string().empty());
  EXPECT_FALSE(num.as_bool());
  EXPECT_EQ(num.size(), 0u);
  const JsonValue str = JsonValue::parse("\"5\"");
  EXPECT_DOUBLE_EQ(str.as_number(1.5), 1.5);
}

TEST(Json, RoundTripsOwnReports) {
  // The exact shape bench/regress emits: schema header + nested layers.
  const std::string doc =
      R"({"schema":"armgemm-bench/1","host":"ci","pmu_hardware":false,)"
      R"("peak_gflops_per_core":42.5,"results":[{"n":64,"threads":1,)"
      R"("efficiency":0.77,"layers":{"gebp_seconds":0.001},)"
      R"("pmu":{"cycles":123456789,"discarded_regions":0}}]})";
  std::string err;
  const JsonValue v = JsonValue::parse(doc, &err);
  ASSERT_TRUE(v.is_object()) << err;
  const JsonValue& r = v["results"].items()[0];
  EXPECT_DOUBLE_EQ(r["pmu"]["cycles"].as_number(), 123456789.0);
  EXPECT_DOUBLE_EQ(r["layers"]["gebp_seconds"].as_number(), 0.001);
  EXPECT_FALSE(v["pmu_hardware"].as_bool(true));
}

}  // namespace
