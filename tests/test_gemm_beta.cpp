// Beta-fusion semantics tests. The drivers no longer pre-scale C with a
// standalone sweep: beta is threaded into GEBP and applied by the first
// k-panel's kernel call (overwrite for beta==0, accumulate for beta==1,
// fused scale otherwise). These tests pin the BLAS contract across every
// dispatch path — small fast path, serial blocked, parallel blocked —
// for beta in {0, 1, -0.5}, on shapes spanning multiple k-panels so the
// "beta only at kk==0 / pc==0" logic is actually exercised, and with C
// seeded with NaN/Inf under beta==0 (which must overwrite, not propagate).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "scoped_knobs.hpp"

using ag::Context;
using ag::index_t;
using ag::Layout;
using ag::Matrix;
using ag::Trans;

namespace {

void check_beta_case(const Context& ctx, index_t m, index_t n, index_t k, double alpha,
                     double beta, const char* path) {
  auto a = ag::random_matrix(m, k, 41);
  auto b = ag::random_matrix(k, n, 42);
  auto c = ag::random_matrix(m, n, 43);
  Matrix<double> c_ref(c);

  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, alpha, a.data(), a.ld(),
            b.data(), b.ld(), beta, c.data(), c.ld(), ctx);
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, alpha,
                      a.data(), a.ld(), b.data(), b.ld(), beta, c_ref.data(), c_ref.ld());

  const auto cmp = ag::compare_gemm_result(c.view(), c_ref.view(), k, alpha, 1.0, 1.0, beta, 1.0);
  EXPECT_TRUE(cmp.ok) << path << ": m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha
                      << " beta=" << beta << " diff=" << cmp.max_diff
                      << " bound=" << cmp.bound;
}

// beta==0 must overwrite C without reading it: non-finite garbage in C
// (as left by uninitialized or previously-overflowed buffers) must not
// leak into the product. The oracle runs beta=0 on a finite C; both
// results must match and the output must be entirely finite.
void check_beta_zero_overwrites(const Context& ctx, index_t m, index_t n, index_t k,
                                const char* path) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  auto a = ag::random_matrix(m, k, 51);
  auto b = ag::random_matrix(k, n, 52);
  auto c = ag::random_matrix(m, n, 53);
  Matrix<double> c_ref(c);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) c(i, j) = (i + j) % 3 == 0 ? nan : ((i + j) % 3 == 1 ? inf : -inf);

  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(), a.ld(),
            b.data(), b.ld(), 0.0, c.data(), c.ld(), ctx);
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(),
                      a.ld(), b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());

  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      ASSERT_TRUE(std::isfinite(c(i, j)))
          << path << ": non-finite C(" << i << "," << j << ") survived beta=0";
  const auto cmp = ag::compare_gemm_result(c.view(), c_ref.view(), k, 1.0, 1.0, 1.0, 0.0, 1.0);
  EXPECT_TRUE(cmp.ok) << path << ": m=" << m << " n=" << n << " k=" << k
                      << " diff=" << cmp.max_diff << " bound=" << cmp.bound;
}

constexpr double kBetas[] = {0.0, 1.0, -0.5};

TEST(GemmBeta, SmallFastPath) {
  agtest::ScopedSmallMnk force_small(1'000'000'000);
  Context ctx(ag::KernelShape{8, 6}, 1);
  for (double beta : kBetas) {
    check_beta_case(ctx, 24, 20, 16, 1.0, beta, "small");
    check_beta_case(ctx, 13, 7, 9, 2.5, beta, "small");
  }
  check_beta_zero_overwrites(ctx, 24, 20, 16, "small");
}

TEST(GemmBeta, SerialBlockedSinglePanel) {
  agtest::ScopedSmallMnk force_blocked(0);
  Context ctx(ag::KernelShape{8, 6}, 1);
  for (double beta : kBetas) {
    check_beta_case(ctx, 65, 47, 41, 1.0, beta, "serial");
    check_beta_case(ctx, 33, 29, 27, -1.5, beta, "serial");
  }
  check_beta_zero_overwrites(ctx, 65, 47, 41, "serial");
}

TEST(GemmBeta, SerialBlockedMultiKPanel) {
  // k beyond kc forces several GEBP calls per C panel: only the first may
  // apply beta, the rest must accumulate with beta=1.
  agtest::ScopedSmallMnk force_blocked(0);
  Context ctx(ag::KernelShape{8, 6}, 1);
  const index_t k = ctx.block_sizes().kc * 2 + 37;
  for (double beta : kBetas) check_beta_case(ctx, 64, 48, k, 1.0, beta, "serial multi-k");
  check_beta_zero_overwrites(ctx, 64, 48, k, "serial multi-k");
}

TEST(GemmBeta, ParallelBlocked) {
  agtest::ScopedSmallMnk force_blocked(0);
  agtest::ScopedSpinUs no_spin(0);
  Context ctx(ag::KernelShape{8, 6}, 4);
  const index_t k = ctx.block_sizes().kc + 29;  // at least two pc panels
  for (double beta : kBetas) {
    check_beta_case(ctx, 96, 80, 64, 1.0, beta, "parallel");
    check_beta_case(ctx, 70, 54, k, 0.5, beta, "parallel multi-k");
  }
  check_beta_zero_overwrites(ctx, 96, 80, k, "parallel");
}

}  // namespace
