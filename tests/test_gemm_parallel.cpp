// Parallel dgemm (Figure 9): results identical to serial for every thread
// count, including ragged partitions, small matrices (fewer blocks than
// threads), and the paper's threaded block sizes.
#include <gtest/gtest.h>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"

using ag::Context;
using ag::index_t;
using ag::Layout;
using ag::Matrix;
using ag::Trans;

namespace {

void check_parallel(index_t m, index_t n, index_t k, int threads,
                    ag::KernelShape shape = {8, 6}) {
  auto a = ag::random_matrix(m, k, 201);
  auto b = ag::random_matrix(k, n, 202);
  auto c = ag::random_matrix(m, n, 203);
  Matrix<double> c_ref(c);

  Context ctx(shape, threads);
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(), a.ld(),
            b.data(), b.ld(), 1.0, c.data(), c.ld(), ctx);
  ag::blocked_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(),
                    a.ld(), b.data(), b.ld(), 1.0, c_ref.data(), c_ref.ld());

  const auto cmp = ag::compare_gemm_result(c.view(), c_ref.view(), k, 1.0, 1.0, 1.0, 1.0, 1.0);
  EXPECT_TRUE(cmp.ok) << "m=" << m << " n=" << n << " k=" << k << " threads=" << threads
                      << " diff=" << cmp.max_diff << " bound=" << cmp.bound;
}

class ThreadCounts : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCounts, MediumSquare) { check_parallel(160, 120, 90, GetParam()); }
TEST_P(ThreadCounts, RaggedShape) { check_parallel(157, 111, 73, GetParam()); }
TEST_P(ThreadCounts, TallSkinny) { check_parallel(400, 24, 36, GetParam()); }
TEST_P(ThreadCounts, ShortWide) { check_parallel(24, 400, 36, GetParam()); }

INSTANTIATE_TEST_SUITE_P(Counts, ThreadCounts, ::testing::Values(2, 3, 4, 8));

TEST(ParallelGemm, MoreThreadsThanBlocks) {
  // M smaller than one mc block: most threads have no work.
  check_parallel(16, 64, 32, 8);
  check_parallel(9, 30, 20, 8);
}

TEST(ParallelGemm, SingleRowFallsBackToSerial) { check_parallel(1, 50, 50, 4); }

TEST(ParallelGemm, MultiplePanelsExerciseBarriers) {
  // k and n larger than kc/nc force several pack-B phases with barriers.
  Context ctx(ag::KernelShape{4, 4}, 4);
  ag::BlockSizes bs;
  bs.mr = 4;
  bs.nr = 4;
  bs.kc = 8;
  bs.mc = 8;
  bs.nc = 12;
  ctx.set_block_sizes(bs);

  auto a = ag::random_matrix(50, 40, 301);
  auto b = ag::random_matrix(40, 45, 302);
  auto c = ag::random_matrix(50, 45, 303);
  Matrix<double> c_ref(c);
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 50, 45, 40, 1.0, a.data(), a.ld(),
            b.data(), b.ld(), 1.0, c.data(), c.ld(), ctx);
  ag::blocked_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 50, 45, 40, 1.0, a.data(),
                    a.ld(), b.data(), b.ld(), 1.0, c_ref.data(), c_ref.ld());
  const auto cmp = ag::compare_gemm_result(c.view(), c_ref.view(), 40, 1.0, 1.0, 1.0, 1.0, 1.0);
  EXPECT_TRUE(cmp.ok) << cmp.max_diff;
}

TEST(ParallelGemm, PaperEightThreadBlockSizes) {
  Context ctx(ag::KernelShape{8, 6}, 8);
  ctx.set_block_sizes(ag::paper_block_sizes({8, 6}, 8));
  check_parallel(300, 200, 100, 8);
}

TEST(ParallelGemm, TransposesUnderThreads) {
  Context ctx(ag::KernelShape{8, 6}, 4);
  auto a = ag::random_matrix(60, 80, 401);  // op(A) = A^T: 80 x 60
  auto b = ag::random_matrix(50, 60, 402);  // op(B) = B^T: 60 x 50... sizes below
  auto c = ag::random_matrix(80, 50, 403);
  Matrix<double> c_ref(c);
  ag::dgemm(Layout::ColMajor, Trans::Trans, Trans::Trans, 80, 50, 60, 1.0, a.data(), a.ld(),
            b.data(), b.ld(), 1.0, c.data(), c.ld(), ctx);
  ag::blocked_dgemm(Layout::ColMajor, Trans::Trans, Trans::Trans, 80, 50, 60, 1.0, a.data(),
                    a.ld(), b.data(), b.ld(), 1.0, c_ref.data(), c_ref.ld());
  const auto cmp = ag::compare_gemm_result(c.view(), c_ref.view(), 60, 1.0, 1.0, 1.0, 1.0, 1.0);
  EXPECT_TRUE(cmp.ok) << cmp.max_diff;
}

TEST(ParallelGemm, RepeatedCallsReusePool) {
  // The context's pool persists across calls; repeated use must stay correct.
  Context ctx(ag::KernelShape{8, 6}, 4);
  for (int rep = 0; rep < 5; ++rep) {
    auto a = ag::random_matrix(64, 32, 500 + rep);
    auto b = ag::random_matrix(32, 48, 600 + rep);
    auto c = ag::random_matrix(64, 48, 700 + rep);
    Matrix<double> c_ref(c);
    ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 64, 48, 32, 1.0, a.data(),
              a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(), ctx);
    ag::blocked_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 64, 48, 32, 1.0,
                      a.data(), a.ld(), b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld());
    EXPECT_TRUE(
        ag::compare_gemm_result(c.view(), c_ref.view(), 32, 1.0, 1.0, 1.0, 0.0, 1.0).ok)
        << "rep " << rep;
  }
}

}  // namespace
