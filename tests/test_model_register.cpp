// Pins the register-blocking solver (Section IV-A) to the paper's
// published results: gamma formula, the Figure 5 surface, the 8x6 / nrf=6
// optimum with gamma = 6.857, and the register budget (24 C registers + 8
// working registers).
#include <gtest/gtest.h>

#include <algorithm>

#include "model/machine.hpp"
#include "model/register_blocking.hpp"

namespace agm = ag::model;

TEST(RegisterGamma, MatchesEq8) {
  EXPECT_NEAR(agm::register_gamma(8, 6), 6.857, 1e-3);
  EXPECT_NEAR(agm::register_gamma(8, 4), 16.0 / 3.0, 1e-12);  // 5.33 (Section V)
  EXPECT_NEAR(agm::register_gamma(4, 4), 4.0, 1e-12);
  EXPECT_NEAR(agm::register_gamma(5, 5), 5.0, 1e-12);
  EXPECT_NEAR(agm::register_gamma(6, 8), agm::register_gamma(8, 6), 1e-12);
}

TEST(RegisterGamma, SymmetricAndMonotone) {
  for (int mr = 2; mr <= 16; mr += 2)
    for (int nr = 2; nr <= 16; nr += 2) {
      EXPECT_DOUBLE_EQ(agm::register_gamma(mr, nr), agm::register_gamma(nr, mr));
      if (nr + 2 <= 16)
        EXPECT_LT(agm::register_gamma(mr, nr), agm::register_gamma(mr, nr + 2));
    }
}

TEST(Constraint9, TightAt8x6Nrf6) {
  const auto& m = agm::xgene();
  // (48 + 16 + 12) * 8 = 608 = (32 + 6) * 16: equality.
  EXPECT_TRUE(agm::register_capacity_ok(8, 6, 6, m.regs, m.element_bytes));
  EXPECT_FALSE(agm::register_capacity_ok(8, 6, 5, m.regs, m.element_bytes));
  EXPECT_FALSE(agm::register_capacity_ok(8, 8, 8, m.regs, m.element_bytes));
}

TEST(Constraint10, BoundsPreloadRegisters) {
  const auto& m = agm::xgene();
  // nrf * 16 <= (8 + 6) * 8 = 112 => nrf <= 7.
  EXPECT_TRUE(agm::preload_reuse_ok(8, 6, 7, m.regs, m.element_bytes));
  EXPECT_FALSE(agm::preload_reuse_ok(8, 6, 8, m.regs, m.element_bytes));
  EXPECT_TRUE(agm::preload_reuse_ok(8, 6, 0, m.regs, m.element_bytes));
  EXPECT_FALSE(agm::preload_reuse_ok(8, 6, -1, m.regs, m.element_bytes));
}

TEST(Solver, Picks8x6OnXGene) {
  const agm::RegisterChoice best = agm::solve_register_blocking(agm::xgene());
  EXPECT_EQ(best.mr, 8);
  EXPECT_EQ(best.nr, 6);
  EXPECT_EQ(best.nrf, 6);
  EXPECT_NEAR(best.gamma, 6.857, 1e-3);
}

TEST(Solver, WithoutTallPreferencePicksSameGamma) {
  agm::RegisterBlockingOptions opts;
  opts.prefer_tall = false;
  const agm::RegisterChoice best = agm::solve_register_blocking(agm::xgene(), opts);
  EXPECT_NEAR(best.gamma, 6.857, 1e-3);
  EXPECT_TRUE((best.mr == 8 && best.nr == 6) || (best.mr == 6 && best.nr == 8));
}

TEST(Surface, PeakMatchesFigure5) {
  const auto grid = agm::register_gamma_surface(agm::xgene());
  double best = 0;
  for (const auto& p : grid) best = std::max(best, p.gamma);
  // The surface peaks at 6.857, attained by the symmetric pair 8x6 / 6x8
  // (Figure 5 annotates the 8x6 point).
  EXPECT_NEAR(best, 6.857, 1e-3);
  // The specific Figure 5 annotation: X=8, Y=6 -> Z=6.857.
  for (const auto& p : grid)
    if (p.mr == 8 && p.nrf == 6) {
      EXPECT_EQ(p.best_nr, 6);
      EXPECT_NEAR(p.gamma, 6.857, 1e-3);
    }
}

TEST(Surface, InfeasibleCornerHasZeroGamma) {
  const auto grid = agm::register_gamma_surface(agm::xgene(), 16, 8);
  // Large mr with nrf = 0 cannot satisfy Eq. (9) for any nr... but small
  // nr is always feasible; check that gamma degrades with nrf at high mr.
  double g16_0 = -1, g16_8 = -1;
  for (const auto& p : grid) {
    if (p.mr == 16 && p.nrf == 0) g16_0 = p.gamma;
    if (p.mr == 16 && p.nrf == 8) g16_8 = p.gamma;
  }
  ASSERT_GE(g16_0, 0.0);
  EXPECT_LE(g16_0, g16_8);
}

TEST(Enumeration, SortedDescendingAndContainsPaperShapes) {
  const auto all = agm::enumerate_register_choices(agm::xgene());
  ASSERT_FALSE(all.empty());
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_GE(all[i - 1].gamma, all[i].gamma);
  auto has = [&](int mr, int nr) {
    return std::any_of(all.begin(), all.end(),
                       [&](const agm::RegisterChoice& c) { return c.mr == mr && c.nr == nr; });
  };
  EXPECT_TRUE(has(8, 6));
  EXPECT_TRUE(has(8, 4));
  EXPECT_TRUE(has(4, 4));
}

TEST(RegisterBudget, PaperAllocation8x6) {
  const auto b = agm::register_budget(8, 6, agm::xgene());
  EXPECT_EQ(b.c_registers, 24);  // v8..v31
  EXPECT_EQ(b.ab_registers, 7);  // 8 elements of A + 6 of B in 7 regs
  EXPECT_EQ(b.total, 31);
}

TEST(RegisterBudget, SmallShapes) {
  EXPECT_EQ(agm::register_budget(4, 4, agm::xgene()).c_registers, 8);
  EXPECT_EQ(agm::register_budget(8, 4, agm::xgene()).c_registers, 16);
  EXPECT_EQ(agm::register_budget(5, 5, agm::xgene()).c_registers, 13);  // ceil(25/2)
}
