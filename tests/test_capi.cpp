// CBLAS C-API shim tests: each cblas_* entry point must agree with the
// corresponding C++ call (col-major) and with the reference semantics in
// row-major, including the side/uplo/trans flips the row-major mapping
// performs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/reference_blas3.hpp"
#include "blas/reference_gemm.hpp"
#include "capi/armgemm_cblas.h"
#include "common/matrix.hpp"

using ag::index_t;
using ag::Matrix;

namespace {

TEST(CApi, DgemmColMajorMatchesReference) {
  const int m = 37, n = 29, k = 41;
  auto a = ag::random_matrix(m, k, 1);
  auto b = ag::random_matrix(k, n, 2);
  auto c = ag::random_matrix(m, n, 3);
  Matrix<double> c_ref(c);
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.5, a.data(),
              static_cast<int>(a.ld()), b.data(), static_cast<int>(b.ld()), 0.5, c.data(),
              static_cast<int>(c.ld()));
  ag::reference_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k,
                      1.5, a.data(), a.ld(), b.data(), b.ld(), 0.5, c_ref.data(), c_ref.ld());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-10);
}

TEST(CApi, DgemmRowMajorHandComputed) {
  const double a[] = {1, 2, 3, 4};  // row-major 2x2
  const double b[] = {5, 6, 7, 8};
  double c[4] = {};
  cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, 2, 2, 2, 1.0, a, 2, b, 2, 0.0, c, 2);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(CApi, ConjTransActsAsTrans) {
  const int n = 12;
  auto a = ag::random_matrix(n, n, 4);
  auto b = ag::random_matrix(n, n, 5);
  Matrix<double> c1(n, n), c2(n, n);
  c1.fill(0);
  c2.fill(0);
  cblas_dgemm(CblasColMajor, CblasConjTrans, CblasNoTrans, n, n, n, 1.0, a.data(), n, b.data(),
              n, 0.0, c1.data(), n);
  cblas_dgemm(CblasColMajor, CblasTrans, CblasNoTrans, n, n, n, 1.0, a.data(), n, b.data(), n,
              0.0, c2.data(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(c1(i, j), c2(i, j));
}

TEST(CApi, SgemmMatches) {
  const int n = 24;
  std::vector<float> a(n * n, 0.5f), b(n * n, 0.25f), c(n * n, 1.0f);
  cblas_sgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, n, n, n, 2.0f, a.data(), n, b.data(),
              n, 1.0f, c.data(), n);
  // Every element: 2 * sum(0.5 * 0.25) * n + 1 = 2*0.125*24 + 1 = 7.
  for (float v : c) ASSERT_FLOAT_EQ(v, 7.0f);
}

TEST(CApi, DsyrkRowMajorMatchesColMajorTranspose) {
  const int n = 30, k = 17;
  auto a = ag::random_matrix(n, k, 6);  // col-major n x k
  // Row-major n x k view of the same logical matrix = transpose the data.
  Matrix<double> a_rm(k, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < k; ++j) a_rm(j, i) = a(i, j);
  Matrix<double> c_cm(n, n), c_rm(n, n);
  c_cm.fill(0);
  c_rm.fill(0);
  cblas_dsyrk(CblasColMajor, CblasLower, CblasNoTrans, n, k, 1.0, a.data(),
              static_cast<int>(a.ld()), 0.0, c_cm.data(), n);
  // Row-major with lda = k (row stride); result C row-major lower.
  cblas_dsyrk(CblasRowMajor, CblasLower, CblasNoTrans, n, k, 1.0, a_rm.data(), k, 0.0,
              c_rm.data(), n);
  // c_rm row-major lower(i,j): element at [i*n + j] = c_rm.data()[j + i*?]...
  // compare element-wise: row-major C(i,j) == col-major C(i,j).
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j <= i; ++j)
      ASSERT_NEAR(c_rm.data()[i * n + j], c_cm(i, j), 1e-10) << i << "," << j;
}

TEST(CApi, DtrsmSolvesSystem) {
  const int n = 40, nrhs = 8;
  auto l = ag::random_matrix(n, n, 7);
  for (index_t i = 0; i < n; ++i) l(i, i) = 4.0;
  auto b0 = ag::random_matrix(n, nrhs, 8);
  Matrix<double> x(b0);
  cblas_dtrsm(CblasColMajor, CblasLeft, CblasLower, CblasNoTrans, CblasNonUnit, n, nrhs, 1.0,
              l.data(), n, x.data(), n);
  Matrix<double> x_ref(b0);
  ag::reference_dtrsm(ag::Side::Left, ag::Uplo::Lower, ag::Trans::NoTrans, ag::Diag::NonUnit,
                      n, nrhs, 1.0, l.data(), n, x_ref.data(), n);
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_NEAR(x(i, j), x_ref(i, j), 1e-10);
}

TEST(CApi, DtrmmAndDsymmRun) {
  const int n = 25;
  auto a = ag::random_matrix(n, n, 9);
  auto b = ag::random_matrix(n, n, 10);
  Matrix<double> b2(b), c(n, n);
  c.fill(0);
  cblas_dtrmm(CblasColMajor, CblasLeft, CblasUpper, CblasNoTrans, CblasNonUnit, n, n, 2.0,
              a.data(), n, b2.data(), n);
  Matrix<double> b_ref(b);
  ag::reference_dtrmm(ag::Side::Left, ag::Uplo::Upper, ag::Trans::NoTrans, ag::Diag::NonUnit,
                      n, n, 2.0, a.data(), n, b_ref.data(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_NEAR(b2(i, j), b_ref(i, j), 1e-10);

  cblas_dsymm(CblasColMajor, CblasLeft, CblasLower, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
              c.data(), n);
  Matrix<double> c_ref(n, n);
  c_ref.fill(0);
  ag::reference_dsymm(ag::Side::Left, ag::Uplo::Lower, n, n, 1.0, a.data(), n, b.data(), n,
                      0.0, c_ref.data(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-10);
}

TEST(CApi, ThreadControl) {
  EXPECT_EQ(armgemm_get_num_threads(), 1);
  armgemm_set_num_threads(4);
  EXPECT_EQ(armgemm_get_num_threads(), 4);
  // A call with 4 threads must still be correct.
  const int m = 120, n = 60, k = 50;
  auto a = ag::random_matrix(m, k, 11);
  auto b = ag::random_matrix(k, n, 12);
  auto c = ag::random_matrix(m, n, 13);
  Matrix<double> c_ref(c);
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0, a.data(), m, b.data(),
              k, 1.0, c.data(), m);
  ag::reference_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k,
                      1.0, a.data(), m, b.data(), k, 1.0, c_ref.data(), m);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-10);
  armgemm_set_num_threads(1);
  armgemm_set_num_threads(0);  // ignored
  EXPECT_EQ(armgemm_get_num_threads(), 1);
}

}  // namespace
