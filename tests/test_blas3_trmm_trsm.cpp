// GEMM-based DTRMM and DTRSM across the full side x uplo x trans x diag
// combination space, validated against the naive references and by the
// round-trip identity trsm(trmm(B)) == B.
#include <gtest/gtest.h>

#include "blas/compare.hpp"
#include "blas/reference_blas3.hpp"
#include "blas3/blas3.hpp"
#include "common/matrix.hpp"

using ag::Diag;
using ag::index_t;
using ag::Matrix;
using ag::Side;
using ag::Trans;
using ag::Uplo;

namespace {

// Well-conditioned triangular test matrix: strictly diagonally dominant
// so solves do not amplify (the Unit variants ignore the diagonal, so the
// off-diagonals are scaled down for them too).
Matrix<double> make_triangular(index_t n, std::uint64_t seed) {
  auto a = ag::random_matrix(n, n, seed);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      if (i != j) a(i, j) /= static_cast<double>(n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 2.0 + std::abs(a(i, i));
  return a;
}

struct Combo {
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
};

std::vector<Combo> all_combos() {
  std::vector<Combo> v;
  for (Side s : {Side::Left, Side::Right})
    for (Uplo u : {Uplo::Lower, Uplo::Upper})
      for (Trans t : {Trans::NoTrans, Trans::Trans})
        for (Diag d : {Diag::NonUnit, Diag::Unit}) v.push_back({s, u, t, d});
  return v;
}

std::string combo_name(const Combo& c) {
  return std::string(ag::to_string(c.side)) + ag::to_string(c.uplo) + ag::to_string(c.trans) +
         ag::to_string(c.diag);
}

struct SizeCase {
  index_t m, n;
  double alpha;
};

class TrmmTest : public ::testing::TestWithParam<SizeCase> {};

TEST_P(TrmmTest, AllCombosMatchReference) {
  const auto [m, n, alpha] = GetParam();
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  for (const Combo& c : all_combos()) {
    const index_t na = c.side == Side::Left ? m : n;
    auto a = make_triangular(na, 31);
    auto b = ag::random_matrix(m, n, 32);
    Matrix<double> b_ref(b);
    ag::dtrmm(c.side, c.uplo, c.trans, c.diag, m, n, alpha, a.data(), a.ld(), b.data(), b.ld(),
              ctx);
    ag::reference_dtrmm(c.side, c.uplo, c.trans, c.diag, m, n, alpha, a.data(), a.ld(),
                        b_ref.data(), b_ref.ld());
    const double tol = 1e-11 * static_cast<double>(na + 1);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        ASSERT_NEAR(b(i, j), b_ref(i, j), tol) << combo_name(c) << " @ " << i << "," << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrmmTest,
                         ::testing::Values(SizeCase{1, 1, 1.0}, SizeCase{13, 22, 1.0},
                                           SizeCase{96, 50, 1.0},    // exactly one block
                                           SizeCase{97, 101, -2.0},  // past a block boundary
                                           SizeCase{200, 96, 0.5}));

class TrsmTest : public ::testing::TestWithParam<SizeCase> {};

TEST_P(TrsmTest, AllCombosMatchReference) {
  const auto [m, n, alpha] = GetParam();
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  for (const Combo& c : all_combos()) {
    const index_t na = c.side == Side::Left ? m : n;
    auto a = make_triangular(na, 41);
    auto b = ag::random_matrix(m, n, 42);
    Matrix<double> b_ref(b);
    ag::dtrsm(c.side, c.uplo, c.trans, c.diag, m, n, alpha, a.data(), a.ld(), b.data(), b.ld(),
              ctx);
    ag::reference_dtrsm(c.side, c.uplo, c.trans, c.diag, m, n, alpha, a.data(), a.ld(),
                        b_ref.data(), b_ref.ld());
    const double tol = 1e-10 * static_cast<double>(na + 1);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        ASSERT_NEAR(b(i, j), b_ref(i, j), tol) << combo_name(c) << " @ " << i << "," << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrsmTest,
                         ::testing::Values(SizeCase{1, 1, 1.0}, SizeCase{13, 22, 1.0},
                                           SizeCase{96, 50, 1.0}, SizeCase{97, 101, -2.0},
                                           SizeCase{200, 96, 0.5}));

TEST(TrsmRoundTrip, TrsmUndoesTrmm) {
  // X := op(A)^-1 op(A) B must reproduce B for every combo.
  const index_t m = 120, n = 64;
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  for (const Combo& c : all_combos()) {
    const index_t na = c.side == Side::Left ? m : n;
    auto a = make_triangular(na, 51);
    auto b0 = ag::random_matrix(m, n, 52);
    Matrix<double> b(b0);
    ag::dtrmm(c.side, c.uplo, c.trans, c.diag, m, n, 1.0, a.data(), a.ld(), b.data(), b.ld(),
              ctx);
    ag::dtrsm(c.side, c.uplo, c.trans, c.diag, m, n, 1.0, a.data(), a.ld(), b.data(), b.ld(),
              ctx);
    EXPECT_LT(ag::max_abs_diff(b.view(), b0.view()), 1e-9) << combo_name(c);
  }
}

TEST(TrsmSolve, MatchesDenseSolveViaGemm) {
  // Solve L X = B, then verify L X == B through dgemm.
  const index_t n = 150, nrhs = 40;
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  auto l = make_triangular(n, 61);
  auto b0 = ag::random_matrix(n, nrhs, 62);
  Matrix<double> x(b0);
  ag::dtrsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, n, nrhs, 1.0, l.data(),
            l.ld(), x.data(), x.ld(), ctx);
  // Compute L*X with the lower triangle of l and compare to b0.
  Matrix<double> lx(n, nrhs);
  lx.fill(0.0);
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < n; ++i) {
      double acc = 0;
      for (index_t p = 0; p <= i; ++p) acc += l(i, p) * x(p, j);
      lx(i, j) = acc;
    }
  EXPECT_LT(ag::max_abs_diff(lx.view(), b0.view()), 1e-9);
}

TEST(TrmmDegenerate, ZeroSizesNoOp) {
  ag::Context ctx;
  double b[1] = {5};
  double a[1] = {2};
  ag::dtrmm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 0, 1, 1.0, a, 1, b, 1, ctx);
  ag::dtrsm(Side::Right, Uplo::Upper, Trans::Trans, Diag::Unit, 1, 0, 1.0, a, 1, b, 1, ctx);
  EXPECT_DOUBLE_EQ(b[0], 5);
}

}  // namespace
