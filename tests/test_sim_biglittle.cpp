// sim/biglittle: the analytic big.LITTLE schedule model. Closed-form
// arithmetic over the runtime's own panel/ticket grids, so every
// expectation here is exact and host-independent. The headline
// assertions reproduce the Catalán et al. shape (PAPERS.md): a static
// equal split is pinned to the LITTLE class, weighting recovers (close
// to) the machine's aggregate throughput, and a symmetric machine is
// left exactly alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "core/block_sizes.hpp"
#include "sim/biglittle.hpp"

using ag::sim::BigLittleConfig;
using ag::sim::GemmScheduleResult;
using ag::sim::ScheduleOutcome;

namespace {

// Aggregate-throughput speedup bound over round-robin: wall can shrink
// from "slowest class paces everyone" to "every core contributes its
// speed", i.e. (sum of speeds) / (ranks * s_min).
double ideal_bound(const BigLittleConfig& cfg) {
  double sum = 0, mn = cfg.speed_of_rank(0);
  for (int r = 0; r < cfg.ranks(); ++r) {
    sum += cfg.speed_of_rank(r);
    mn = std::min(mn, cfg.speed_of_rank(r));
  }
  return sum / (cfg.ranks() * mn);
}

TEST(BigLittleConfig, TwoToOneShape) {
  const BigLittleConfig cfg = BigLittleConfig::two_to_one(2, 2);
  EXPECT_EQ(cfg.ranks(), 4);
  ASSERT_EQ(cfg.class_cpus.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.class_speed[0], 1.0);
  EXPECT_DOUBLE_EQ(cfg.class_speed[1], 0.5);
  // Classes are contiguous cpu ranges, fastest first; ranks wrap.
  EXPECT_EQ(cfg.class_of_rank(0), 0);
  EXPECT_EQ(cfg.class_of_rank(1), 0);
  EXPECT_EQ(cfg.class_of_rank(2), 1);
  EXPECT_EQ(cfg.class_of_rank(3), 1);
  EXPECT_EQ(cfg.class_of_rank(4), 0);
  EXPECT_DOUBLE_EQ(cfg.speed_of_rank(3), 0.5);
  EXPECT_DOUBLE_EQ(cfg.speed_of_rank(5), 1.0);
}

TEST(SimBigLittle, RoundRobinIsPinnedToTheLittleClass) {
  // 100 equal tickets over 2 big + 2 little at 2:1: equal shares of 25,
  // big cores finish at 25, little at 50 — the barrier waits for 50.
  const BigLittleConfig cfg = BigLittleConfig::two_to_one(2, 2);
  const ScheduleOutcome rr = ag::sim::simulate_round_robin(cfg, 100, 1.0);
  ASSERT_EQ(rr.finish.size(), 4u);
  EXPECT_DOUBLE_EQ(rr.finish[0], 25.0);
  EXPECT_DOUBLE_EQ(rr.finish[2], 50.0);
  EXPECT_DOUBLE_EQ(rr.wall, 50.0);
  EXPECT_DOUBLE_EQ(rr.busy, 150.0);
  EXPECT_DOUBLE_EQ(rr.utilization, 0.75);
}

TEST(SimBigLittle, TicketWorkScalesLinearly) {
  const BigLittleConfig cfg = BigLittleConfig::two_to_one(2, 2);
  const ScheduleOutcome one = ag::sim::simulate_round_robin(cfg, 100, 1.0);
  const ScheduleOutcome two = ag::sim::simulate_round_robin(cfg, 100, 2.0);
  EXPECT_DOUBLE_EQ(two.wall, 2.0 * one.wall);
  EXPECT_DOUBLE_EQ(two.utilization, one.utilization);
}

TEST(SimBigLittle, WeightedSpansRecoverTheAggregateThroughput) {
  // proportional_spans gives the big pair 33+33 tickets and the little
  // pair 17+17: walls 33 and 34 instead of 25 and 50.
  const BigLittleConfig cfg = BigLittleConfig::two_to_one(2, 2);
  const ScheduleOutcome ws = ag::sim::simulate_weighted(cfg, 100, 1.0, false);
  ASSERT_EQ(ws.finish.size(), 4u);
  EXPECT_DOUBLE_EQ(ws.finish[0], 33.0);
  EXPECT_DOUBLE_EQ(ws.finish[2], 34.0);
  EXPECT_DOUBLE_EQ(ws.wall, 34.0);
  EXPECT_LT(ws.wall, ag::sim::simulate_round_robin(cfg, 100, 1.0).wall);
}

TEST(SimBigLittle, StealingStaysWithinTheIdealBound) {
  const BigLittleConfig cfg = BigLittleConfig::two_to_one(2, 2);
  const double bound = ideal_bound(cfg);
  EXPECT_DOUBLE_EQ(bound, 1.5);
  for (std::int64_t tickets : {8, 50, 100, 1000}) {
    SCOPED_TRACE(tickets);
    const ScheduleOutcome rr = ag::sim::simulate_round_robin(cfg, tickets, 1.0);
    const ScheduleOutcome st = ag::sim::simulate_weighted(cfg, tickets, 1.0, true);
    EXPECT_LE(st.wall, rr.wall);
    // The lower bound on any schedule's wall is aggregate work over
    // aggregate speed; stealing cannot beat it.
    EXPECT_GE(st.wall * 3.0, static_cast<double>(tickets) - 1e-9);
    EXPECT_LE(rr.wall / st.wall, bound + 1e-9);
    EXPECT_GE(st.utilization, rr.utilization);
  }
}

TEST(SimBigLittle, SymmetricMachineIsLeftAlone) {
  // On a symmetric machine every policy degenerates to the same equal
  // split: the topology-aware schedule must cost exactly nothing.
  BigLittleConfig cfg;
  cfg.class_cpus = {4};
  cfg.class_speed = {1.0};
  const ScheduleOutcome rr = ag::sim::simulate_round_robin(cfg, 100, 1.0);
  const ScheduleOutcome ws = ag::sim::simulate_weighted(cfg, 100, 1.0, false);
  const ScheduleOutcome st = ag::sim::simulate_weighted(cfg, 100, 1.0, true);
  EXPECT_DOUBLE_EQ(ws.wall, rr.wall);
  EXPECT_DOUBLE_EQ(st.wall, rr.wall);

  const ag::BlockSizes bs = ag::default_block_sizes(ag::KernelShape{8, 6}, 4);
  const GemmScheduleResult g = ag::sim::simulate_gemm_schedule(cfg, 384, 384, 384, bs);
  EXPECT_DOUBLE_EQ(g.speedup(), 1.0);
}

TEST(SimBigLittle, GemmScheduleReproducesTheCatalanSpeedup) {
  // The acceptance-criterion sweep: on an emulated 2+2 big.LITTLE at
  // 2:1, the weighted schedule must beat round-robin for 256^3..512^3,
  // and stay within the aggregate-throughput bound.
  const BigLittleConfig cfg = BigLittleConfig::two_to_one(2, 2);
  const ag::BlockSizes bs = ag::default_block_sizes(ag::KernelShape{8, 6}, cfg.ranks());
  const double bound = ideal_bound(cfg);
  for (std::int64_t n : {256, 384, 512}) {
    SCOPED_TRACE(n);
    const GemmScheduleResult g = ag::sim::simulate_gemm_schedule(cfg, n, n, n, bs);
    EXPECT_GT(g.panels, 0);
    EXPECT_GT(g.tickets, 0);
    EXPECT_GT(g.speedup(), 1.0);
    EXPECT_LE(g.speedup(), bound + 1e-9);
    // Policy ordering: stealing refines static weighting, which beats
    // (or matches) the equal split.
    EXPECT_LE(g.weighted_steal_wall, g.weighted_wall + 1e-9);
    EXPECT_LE(g.weighted_steal_wall, g.round_robin_wall);
  }
}

TEST(SimBigLittle, BiggerAsymmetryBiggerWin) {
  // A 3:1 machine leaves more on the table for round-robin than a 2:1
  // machine, so the recovered speedup must be monotone in the ratio.
  const ag::BlockSizes bs = ag::default_block_sizes(ag::KernelShape{8, 6}, 4);
  BigLittleConfig r2 = BigLittleConfig::two_to_one(2, 2);
  BigLittleConfig r3 = r2;
  r3.class_speed[1] = 1.0 / 3.0;
  const GemmScheduleResult g2 = ag::sim::simulate_gemm_schedule(r2, 384, 384, 384, bs);
  const GemmScheduleResult g3 = ag::sim::simulate_gemm_schedule(r3, 384, 384, 384, bs);
  EXPECT_GT(g3.speedup(), g2.speedup());
}

}  // namespace
