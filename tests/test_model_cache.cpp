// Pins the cache-blocking solver to the paper's Table III / Figure 14 /
// Section IV-B constants and checks the occupancy fractions the paper
// states in prose ("a kc x nr sliver of B fills 3/4 of the L1 data
// cache", "an mc x kc block of A fills 7/8 of the L2", "a kc x nc panel
// of B occupies 15/16 of the L3").
#include <gtest/gtest.h>

#include "model/cache_blocking.hpp"
#include "model/machine.hpp"

namespace agm = ag::model;

TEST(CacheBlocking, Serial8x6MatchesPaper) {
  const auto r = agm::solve_cache_blocking(agm::xgene(), {8, 6}, 1);
  EXPECT_EQ(r.blocks.kc, 512);
  EXPECT_EQ(r.blocks.mc, 56);
  EXPECT_EQ(r.blocks.nc, 1920);
  EXPECT_EQ(r.k1, 1);
  EXPECT_EQ(r.k2, 2);
  EXPECT_EQ(r.k3, 1);
  EXPECT_NEAR(r.l1_fraction_b_sliver, 3.0 / 4.0, 1e-9);
  EXPECT_NEAR(r.l2_fraction_a_block, 7.0 / 8.0, 1e-9);
  EXPECT_NEAR(r.l3_fraction_b_panel, 15.0 / 16.0, 1e-9);
}

TEST(CacheBlocking, EightThreads8x6MatchesPaper) {
  const auto r = agm::solve_cache_blocking(agm::xgene(), {8, 6}, 8);
  EXPECT_EQ(r.blocks.kc, 512);
  EXPECT_EQ(r.blocks.mc, 24);
  EXPECT_EQ(r.blocks.nc, 1792);
}

TEST(CacheBlocking, TwoAndFourThreads8x6MatchFigure14) {
  const auto r2 = agm::solve_cache_blocking(agm::xgene(), {8, 6}, 2);
  EXPECT_EQ(r2.blocks.mc, 56);
  EXPECT_EQ(r2.blocks.nc, 1920);
  const auto r4 = agm::solve_cache_blocking(agm::xgene(), {8, 6}, 4);
  EXPECT_EQ(r4.blocks.mc, 56);
  EXPECT_EQ(r4.blocks.nc, 1792);
}

TEST(CacheBlocking, Serial8x4MatchesTable3) {
  const auto r = agm::solve_cache_blocking(agm::xgene(), {8, 4}, 1);
  EXPECT_EQ(r.blocks.kc, 768);
  EXPECT_EQ(r.blocks.mc, 32);
  EXPECT_EQ(r.blocks.nc, 1280);
}

TEST(CacheBlocking, EightThreads8x4MatchesTable3) {
  const auto r = agm::solve_cache_blocking(agm::xgene(), {8, 4}, 8);
  EXPECT_EQ(r.blocks.kc, 768);
  EXPECT_EQ(r.blocks.mc, 16);
  EXPECT_EQ(r.blocks.nc, 1192);
}

TEST(CacheBlocking, Serial4x4Kc768) {
  // Table III reuses the 8x4 cache blocks for 4x4; the solver's own
  // mc differs only by mr-rounding (36 = round_4(37) vs round_8(37) = 32).
  const auto r = agm::solve_cache_blocking(agm::xgene(), {4, 4}, 1);
  EXPECT_EQ(r.blocks.kc, 768);
  EXPECT_EQ(r.blocks.mc, 36);
  EXPECT_EQ(r.blocks.nc, 1280);
}

TEST(CacheBlocking, ThreadsPerModulePlacement) {
  const auto& m = agm::xgene();
  EXPECT_EQ(agm::threads_per_module(m, 1), 1);
  EXPECT_EQ(agm::threads_per_module(m, 2), 1);  // one per module
  EXPECT_EQ(agm::threads_per_module(m, 4), 1);
  EXPECT_EQ(agm::threads_per_module(m, 8), 2);  // modules double up
}

TEST(CacheBlocking, BlocksAreMultiplesOfRegisterBlocks) {
  for (int threads : {1, 2, 4, 8}) {
    for (ag::KernelShape s : {ag::KernelShape{8, 6}, {8, 4}, {4, 4}}) {
      const auto r = agm::solve_cache_blocking(agm::xgene(), s, threads);
      EXPECT_EQ(r.blocks.mc % s.mr, 0) << s.to_string() << " t=" << threads;
      // nc is rounded to whole 64-byte cache lines (8 doubles), not to nr.
      EXPECT_EQ(r.blocks.nc % 8, 0) << s.to_string() << " t=" << threads;
      EXPECT_GT(r.blocks.kc, 0);
    }
  }
}

TEST(CacheBlocking, MonotoneInThreads) {
  // More threads sharing caches can never enlarge the resident blocks.
  for (ag::KernelShape s : {ag::KernelShape{8, 6}, {8, 4}, {4, 4}}) {
    const auto r1 = agm::solve_cache_blocking(agm::xgene(), s, 1);
    const auto r8 = agm::solve_cache_blocking(agm::xgene(), s, 8);
    EXPECT_LE(r8.blocks.mc, r1.blocks.mc);
    EXPECT_LE(r8.blocks.nc, r1.blocks.nc);
    EXPECT_EQ(r8.blocks.kc, r1.blocks.kc);  // kc depends only on the private L1
  }
}

TEST(GotoHeuristic, HalfCacheSizes) {
  // kc*nr*8 ~ L1/2 and mc*kc*8 ~ L2/2, as in Table VI's comparison row
  // (320 x 96 x 1536 for the 8x6 kernel).
  const auto bs = agm::goto_heuristic_blocking(agm::xgene(), {8, 6}, 1);
  EXPECT_EQ(bs.kc, 320);
  EXPECT_EQ(bs.mc, 96);
  EXPECT_EQ(bs.nc, 1536);
}

TEST(PrefetchDistances, MatchSectionIVB) {
  const auto d = agm::prefetch_distances(agm::xgene(), {8, 6}, 512);
  EXPECT_EQ(d.prea_bytes, 1024);   // 2 * 8 * 8 * 8
  EXPECT_EQ(d.preb_bytes, 24576);  // 512 * 6 * 8
}

TEST(CacheBlocking, ScalesWithCacheGeometry) {
  // Doubling the L1 doubles kc; halving associativity changes fractions.
  agm::MachineConfig m = agm::xgene();
  m.l1d.size_bytes *= 2;
  const auto r = agm::solve_cache_blocking(m, {8, 6}, 1);
  EXPECT_EQ(r.blocks.kc, 1024);
}
