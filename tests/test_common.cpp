// Utility-layer tests: aligned buffers, integer helpers, RNG determinism,
// matrix container semantics, tables and CLI parsing.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/aligned_buffer.hpp"
#include "common/cli.hpp"
#include "common/math_util.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

TEST(MathUtil, CeilDivRoundUpDown) {
  EXPECT_EQ(ag::ceil_div(10, 3), 4);
  EXPECT_EQ(ag::ceil_div(9, 3), 3);
  EXPECT_EQ(ag::ceil_div(std::int64_t{0}, std::int64_t{8}), 0);
  EXPECT_EQ(ag::round_up(10, 8), 16);
  EXPECT_EQ(ag::round_up(16, 8), 16);
  EXPECT_EQ(ag::round_down(15, 8), 8);
  EXPECT_EQ(ag::round_down(7, 8), 0);
}

TEST(MathUtil, PowersOfTwo) {
  EXPECT_TRUE(ag::is_pow2(1));
  EXPECT_TRUE(ag::is_pow2(64));
  EXPECT_FALSE(ag::is_pow2(0));
  EXPECT_FALSE(ag::is_pow2(48));
  EXPECT_EQ(ag::log2_exact(64), 6u);
  EXPECT_EQ(ag::log2_exact(1), 0u);
}

TEST(AlignedBuffer, AlignmentAndSize) {
  ag::AlignedBuffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % ag::kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  ag::AlignedBuffer<double> a(10);
  double* p = a.data();
  ag::AlignedBuffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, EnsureGrowsOnlyWhenNeeded) {
  ag::AlignedBuffer<double> a(10);
  double* p = a.data();
  a.ensure(5);
  EXPECT_EQ(a.data(), p);  // no reallocation
  a.ensure(20);
  EXPECT_GE(a.size(), 20u);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  ag::AlignedBuffer<double> a;
  EXPECT_TRUE(a.empty());
  ag::AlignedBuffer<double> b(0);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Rng, DeterministicAcrossInstances) {
  ag::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  ag::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  ag::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(MatrixTest, ColumnMajorIndexing) {
  ag::Matrix<double> m(3, 2);
  m(0, 0) = 1;
  m(2, 1) = 5;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[2 + 1 * 3], 5);
}

TEST(MatrixTest, LeadingDimensionEmbedding) {
  ag::Matrix<double> m(3, 2, 5);
  EXPECT_EQ(m.ld(), 5);
  m(2, 1) = 7;
  EXPECT_EQ(m.data()[2 + 1 * 5], 7);
}

TEST(MatrixTest, CopyIsDeep) {
  ag::Matrix<double> m(2, 2);
  m.fill(3.0);
  ag::Matrix<double> c(m);
  c(0, 0) = 9.0;
  EXPECT_EQ(m(0, 0), 3.0);
}

TEST(MatrixTest, ViewBlockAddressing) {
  ag::Matrix<double> m(4, 4);
  for (ag::index_t j = 0; j < 4; ++j)
    for (ag::index_t i = 0; i < 4; ++i) m(i, j) = static_cast<double>(i * 10 + j);
  auto blk = m.view().block(1, 2, 2, 2);
  EXPECT_EQ(blk(0, 0), 12.0);
  EXPECT_EQ(blk(1, 1), 23.0);
}

TEST(MatrixTest, RandomFillPoisonsPadding) {
  ag::Matrix<double> m(2, 2, 4);
  ag::Xoshiro256 rng(1);
  m.fill_random(rng);
  EXPECT_EQ(m.data()[2], 1e300);  // padding row
  EXPECT_LT(std::abs(m(1, 1)), 1.0001);
}

TEST(TableTest, TextAndCsv) {
  ag::Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"22", "yy"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| a "), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,b\n1,x\n22,yy\n");
}

TEST(TableTest, RejectsWrongArity) {
  ag::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), ag::InvalidArgument);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(ag::Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(ag::Table::fmt_int(42), "42");
  EXPECT_EQ(ag::Table::fmt_pct(0.872, 1), "87.2%");
}

TEST(CliTest, FlagForms) {
  // Note: a bare switch consumes a following non-flag token as its value,
  // so positionals must precede switches or use --name=value.
  const char* argv[] = {"prog", "pos", "--size=128", "--threads", "4", "--csv"};
  ag::CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("size", 0), 128);
  EXPECT_EQ(args.get_int("threads", 0), 4);
  EXPECT_TRUE(args.get_bool("csv", false));
  EXPECT_FALSE(args.get_bool("full", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(CliTest, Defaults) {
  const char* argv[] = {"prog"};
  ag::CliArgs args(1, argv);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
}

TEST(CheckMacros, ThrowTypedExceptions) {
  EXPECT_THROW(AG_CHECK(false), ag::InvalidArgument);
  EXPECT_THROW(AG_CHECK_MSG(1 == 2, "msg " << 42), ag::InvalidArgument);
  EXPECT_NO_THROW(AG_CHECK(true));
}

}  // namespace
