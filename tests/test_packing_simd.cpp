// Property tests for the SIMD packing fast paths (packing_impl.hpp): the
// shipping pack_a_t / pack_b_slivers_t must be BIT-exact with the scalar
// reference loops over randomized transposes, leading dimensions, block
// shapes (including edge slivers and mc < mr / nc < nr), sliver
// sub-ranges, and unaligned source/destination pointers — for double and
// float. Bitwise comparison (memcmp), not approximate: packing is pure
// data movement, so any difference is a bug.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/packing.hpp"
#include "core/packing_impl.hpp"

using ag::index_t;
using ag::Trans;

namespace {

template <typename T>
std::vector<T> random_storage(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(dist(rng));
  return v;
}

template <typename T>
class PackSimdMatchesScalar : public ::testing::Test {};

using PackTypes = ::testing::Types<double, float>;
TYPED_TEST_SUITE(PackSimdMatchesScalar, PackTypes);

// Randomized A-block packing: every (trans, lda, row0/col0, mc, kc, mr)
// combination the blocked drivers can produce, plus element-offset source
// and destination bases so the vector loops see unaligned pointers.
TYPED_TEST(PackSimdMatchesScalar, PackA) {
  using T = TypeParam;
  std::mt19937 rng(20260806);
  const int mrs[] = {4, 6, 8, 12};
  for (int iter = 0; iter < 300; ++iter) {
    const int mr = mrs[rng() % 4];
    const index_t mc = 1 + static_cast<index_t>(rng() % 40);  // edge slivers and mc < mr
    const index_t kc = 1 + static_cast<index_t>(rng() % 48);
    const index_t row0 = static_cast<index_t>(rng() % 3);
    const index_t col0 = static_cast<index_t>(rng() % 3);
    const Trans trans = (rng() & 1u) ? Trans::Trans : Trans::NoTrans;
    // Stored-matrix extents covering the op(A)(row0.., col0..) block.
    const index_t min_ld = trans == Trans::NoTrans ? row0 + mc : col0 + kc;
    const index_t lda = min_ld + static_cast<index_t>(rng() % 5);  // odd strides included
    const index_t ncols = trans == Trans::NoTrans ? col0 + kc : row0 + mc;
    const std::size_t src_off = rng() % 4;  // unaligned source base
    const std::size_t dst_off = rng() % 4;  // unaligned destination base
    const auto storage = random_storage<T>(
        src_off + static_cast<std::size_t>(lda * ncols), rng);
    const T* a = storage.data() + src_off;

    const auto sz = static_cast<std::size_t>(ag::detail::packed_a_size_t<T>(mc, kc, mr));
    std::vector<T> fast(dst_off + sz, T(-7)), ref(dst_off + sz, T(-7));
    ag::detail::pack_a_t(trans, a, lda, row0, col0, mc, kc, mr, fast.data() + dst_off);
    ag::detail::pack_a_scalar_t(trans, a, lda, row0, col0, mc, kc, mr, ref.data() + dst_off);
    ASSERT_EQ(0, std::memcmp(fast.data(), ref.data(), fast.size() * sizeof(T)))
        << "pack_a mismatch: trans=" << ag::to_string(trans) << " lda=" << lda
        << " row0=" << row0 << " col0=" << col0 << " mc=" << mc << " kc=" << kc
        << " mr=" << mr << " src_off=" << src_off << " dst_off=" << dst_off;
  }
}

// Randomized B-panel packing, including partial sliver ranges as produced
// by the cooperative parallel packer (Figure 9 work splitting).
TYPED_TEST(PackSimdMatchesScalar, PackBSlivers) {
  using T = TypeParam;
  std::mt19937 rng(8062026);
  const int nrs[] = {4, 6, 8, 16};
  for (int iter = 0; iter < 300; ++iter) {
    const int nr = nrs[rng() % 4];
    const index_t nc = 1 + static_cast<index_t>(rng() % 52);  // edge slivers and nc < nr
    const index_t kc = 1 + static_cast<index_t>(rng() % 48);
    const index_t row0 = static_cast<index_t>(rng() % 3);
    const index_t col0 = static_cast<index_t>(rng() % 3);
    const Trans trans = (rng() & 1u) ? Trans::Trans : Trans::NoTrans;
    const index_t min_ld = trans == Trans::NoTrans ? row0 + kc : col0 + nc;
    const index_t ldb = min_ld + static_cast<index_t>(rng() % 5);
    const index_t ncols = trans == Trans::NoTrans ? col0 + nc : row0 + kc;
    const std::size_t src_off = rng() % 4;
    const std::size_t dst_off = rng() % 4;
    const auto storage = random_storage<T>(
        src_off + static_cast<std::size_t>(ldb * ncols), rng);
    const T* b = storage.data() + src_off;

    const index_t nslivers = ag::ceil_div(nc, static_cast<index_t>(nr));
    const index_t sb = static_cast<index_t>(rng() % static_cast<unsigned>(nslivers));
    const index_t se =
        sb + 1 + static_cast<index_t>(rng() % static_cast<unsigned>(nslivers - sb));

    const auto sz = static_cast<std::size_t>(ag::detail::packed_b_size_t<T>(kc, nc, nr));
    std::vector<T> fast(dst_off + sz, T(-7)), ref(dst_off + sz, T(-7));
    ag::detail::pack_b_slivers_t(trans, b, ldb, row0, col0, kc, nc, nr, sb, se,
                                 fast.data() + dst_off);
    ag::detail::pack_b_slivers_scalar_t(trans, b, ldb, row0, col0, kc, nc, nr, sb, se,
                                        ref.data() + dst_off);
    ASSERT_EQ(0, std::memcmp(fast.data(), ref.data(), fast.size() * sizeof(T)))
        << "pack_b_slivers mismatch: trans=" << ag::to_string(trans) << " ldb=" << ldb
        << " row0=" << row0 << " col0=" << col0 << " kc=" << kc << " nc=" << nc
        << " nr=" << nr << " slivers=[" << sb << "," << se << ") src_off=" << src_off
        << " dst_off=" << dst_off;
  }
}

// The public double-precision entry points must agree with the exported
// scalar reference wrappers (the pair the regress packing points time).
TEST(PackPublicApi, MatchesExportedReference) {
  std::mt19937 rng(7);
  const index_t mc = 29, kc = 37, nc = 41;
  const int mr = 8, nr = 6;
  for (Trans trans : {Trans::NoTrans, Trans::Trans}) {
    const index_t lda = 80;  // big enough for either orientation of a 70x70 source
    const auto storage = random_storage<double>(static_cast<std::size_t>(lda * 70), rng);

    const auto a_sz = static_cast<std::size_t>(ag::packed_a_size(mc, kc, mr));
    std::vector<double> a_fast(a_sz, -7.0), a_ref(a_sz, -7.0);
    ag::pack_a(trans, storage.data(), lda, 2, 1, mc, kc, mr, a_fast.data());
    ag::pack_a_reference(trans, storage.data(), lda, 2, 1, mc, kc, mr, a_ref.data());
    EXPECT_EQ(0, std::memcmp(a_fast.data(), a_ref.data(), a_sz * sizeof(double)))
        << "pack_a trans=" << ag::to_string(trans);

    const auto b_sz = static_cast<std::size_t>(ag::packed_b_size(kc, nc, nr));
    std::vector<double> b_fast(b_sz, -7.0), b_ref(b_sz, -7.0);
    ag::pack_b(trans, storage.data(), lda, 1, 2, kc, nc, nr, b_fast.data());
    ag::pack_b_reference(trans, storage.data(), lda, 1, 2, kc, nc, nr, b_ref.data());
    EXPECT_EQ(0, std::memcmp(b_fast.data(), b_ref.data(), b_sz * sizeof(double)))
        << "pack_b trans=" << ag::to_string(trans);
  }
}

TEST(PackPublicApi, IsaNameIsKnown) {
  const std::string isa = ag::packing_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "neon" || isa == "scalar") << isa;
}

}  // namespace
