// Unit tests of the set-associative LRU cache against hand-computable
// traces: hit/miss accounting, LRU eviction order, write-back behaviour,
// set-conflict behaviour (the phenomenon Eqs. 15-20 are designed around).
#include <gtest/gtest.h>

#include "model/machine.hpp"
#include "sim/cache.hpp"

using ag::model::CacheGeometry;
using ag::sim::addr_t;
using ag::sim::Cache;

namespace {
// Tiny cache: 4 sets x 2 ways x 64B lines = 512 bytes.
CacheGeometry tiny() { return {512, 2, 64}; }
}  // namespace

TEST(CacheTest, GeometryDerivation) {
  Cache c("t", tiny());
  EXPECT_EQ(c.geometry().num_sets(), 4);
  EXPECT_EQ(c.geometry().way_bytes(), 256);
}

TEST(CacheTest, ColdMissThenHit) {
  Cache c("t", tiny());
  EXPECT_FALSE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1020, false));  // same line (64B)
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().read_hits, 2u);
}

TEST(CacheTest, LruEvictionOrder) {
  Cache c("t", tiny());
  // Three lines mapping to set 0 (addresses 256 bytes apart: 4 sets * 64B).
  const addr_t a = 0x0000, b = 0x0100, d = 0x0200;
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);  // a is now MRU, b is LRU
  bool evicted = false;
  addr_t evicted_addr = 0;
  c.access(d, false, nullptr, &evicted, &evicted_addr);
  EXPECT_TRUE(evicted);
  EXPECT_EQ(evicted_addr, b);
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(CacheTest, WritebackOnlyForDirtyLines) {
  Cache c("t", tiny());
  const addr_t a = 0x0000, b = 0x0100, d = 0x0200, e = 0x0300;
  c.access(a, true);   // dirty
  c.access(b, false);  // clean
  addr_t wb = 0;
  c.access(d, false, &wb);  // evicts a (LRU, dirty)
  EXPECT_EQ(wb, a);
  EXPECT_EQ(c.stats().writebacks, 1u);
  wb = 0;
  c.access(e, false, &wb);  // evicts b (clean)
  EXPECT_EQ(wb, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheTest, DistinctSetsDoNotConflict) {
  Cache c("t", tiny());
  for (addr_t a = 0; a < 512; a += 64) c.access(a, false);  // fills all sets
  for (addr_t a = 0; a < 512; a += 64) EXPECT_TRUE(c.access(a, false));
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(CacheTest, StreamLargerThanWayThrashes) {
  // A resident working set larger than (assoc-1)/assoc of the cache cannot
  // coexist with a stream — the premise of the paper's Eq. (15).
  Cache c("t", tiny());
  // Working set = 2 ways of set 0: stays only if nothing else maps there.
  const addr_t w1 = 0x0000, w2 = 0x0100;
  c.access(w1, false);
  c.access(w2, false);
  // Stream through set 0 repeatedly: every stream touch evicts a member.
  for (int i = 2; i < 6; ++i) c.access(static_cast<addr_t>(i) * 0x100, false);
  EXPECT_FALSE(c.contains(w1));
  EXPECT_FALSE(c.contains(w2));
}

TEST(CacheTest, InvalidateReportsDirty) {
  Cache c("t", tiny());
  c.access(0x40, true);
  EXPECT_TRUE(c.invalidate(0x40));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_FALSE(c.invalidate(0x40));  // already gone
}

TEST(CacheTest, OccupancyTracksResidentRange) {
  Cache c("t", tiny());
  for (addr_t a = 0; a < 256; a += 64) c.access(a, false);  // 4 of 8 lines
  EXPECT_DOUBLE_EQ(c.occupancy(0, 256), 0.5);
  EXPECT_DOUBLE_EQ(c.occupancy(0x10000, 256), 0.0);
}

TEST(CacheTest, ResetClearsContents) {
  Cache c("t", tiny());
  c.access(0x40, true);
  c.reset();
  EXPECT_FALSE(c.contains(0x40));
}

TEST(CacheTest, XGeneL1Geometry) {
  Cache l1("l1", ag::model::xgene().l1d);
  EXPECT_EQ(l1.geometry().num_sets(), 128);  // 32K / (4 * 64)
  // A kc x nr = 512 x 6 B sliver (24 KB) plus a streaming A sliver must
  // coexist: fill 24 KB contiguously, then stream 4 KB; the resident set
  // survives because it occupies only 3 of 4 ways per set.
  for (addr_t a = 0; a < 24 * 1024; a += 64) l1.access(a, false);
  for (int rep = 0; rep < 4; ++rep)
    for (addr_t a = 0x100000; a < 0x100000 + 4096; a += 64) l1.access(a, false);
  std::uint64_t resident = 0;
  for (addr_t a = 0; a < 24 * 1024; a += 64) resident += l1.contains(a) ? 1 : 0;
  EXPECT_EQ(resident, 24u * 1024 / 64);  // fully resident, as Eq. (15) predicts
}
