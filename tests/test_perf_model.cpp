// Section III performance model: psi properties, bound monotonicity in
// gamma, the layer ratios (Eqs. 14/16), the instruction-mix percentages
// quoted in Section V-A, and the GEBP traffic census.
#include <gtest/gtest.h>

#include "model/machine.hpp"
#include "model/perf_model.hpp"

namespace agm = ag::model;

TEST(Psi, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(agm::psi(0.0), 1.0);
  EXPECT_GT(agm::psi(1.0), agm::psi(2.0));
  EXPECT_LT(agm::psi(1000.0), 0.01);
}

TEST(PerfLowerBound, IncreasesWithGamma) {
  agm::CostParams cost = agm::CostParams::for_machine(agm::xgene(), 1e-9);
  double prev = 0;
  for (double gamma : {1.0, 2.0, 4.0, 6.857, 16.0}) {
    const double perf = agm::perf_lower_bound(gamma, cost);
    EXPECT_GT(perf, prev);
    prev = perf;
  }
  // Never exceeds machine peak (1/mu).
  EXPECT_LE(prev, 1.0 / cost.mu + 1.0);
}

TEST(TimeUpperBound, ReducesToComputeAtInfiniteGamma) {
  agm::CostParams cost = agm::CostParams::for_machine(agm::xgene(), 1e-9);
  const double flops = 1e9;
  const double t_little_data = agm::time_upper_bound(flops, 1.0, cost);
  EXPECT_NEAR(t_little_data, flops * cost.mu, flops * cost.mu * 0.01);
}

TEST(CostParams, KappaIsWordsPerLine) {
  agm::CostParams cost = agm::CostParams::for_machine(agm::xgene(), 1e-9);
  EXPECT_DOUBLE_EQ(cost.kappa, 0.125);  // 8-byte word, 64-byte line
  EXPECT_DOUBLE_EQ(cost.mu, 1.0 / 4.8e9);
}

TEST(LayerGammas, OrderedByLayer) {
  // gamma_register > gamma_gess > gamma_gebp for finite kc, mc.
  const double g_reg = 2.0 / (1.0 / 8 + 1.0 / 6);
  const double g_gess = agm::gamma_gess(8, 6, 512);
  const double g_gebp = agm::gamma_gebp(8, 6, 512, 56);
  EXPECT_GT(g_reg, g_gess);
  EXPECT_GT(g_gess, g_gebp);
  EXPECT_GT(g_gebp, 3.0);
}

TEST(LayerGammas, ImproveWithLargerBlocks) {
  EXPECT_GT(agm::gamma_gess(8, 6, 512), agm::gamma_gess(8, 6, 64));
  EXPECT_GT(agm::gamma_gebp(8, 6, 512, 56), agm::gamma_gebp(8, 6, 512, 8));
}

TEST(InstructionMix, SectionVAPercentages) {
  const auto& m = agm::xgene();
  // 4x4: 66.7%, 8x4: 72.7%, 8x6: 77.4% arithmetic instructions.
  EXPECT_NEAR(agm::kernel_instruction_mix(4, 4, m).arithmetic_fraction(), 0.667, 0.001);
  EXPECT_NEAR(agm::kernel_instruction_mix(8, 4, m).arithmetic_fraction(), 0.727, 0.001);
  EXPECT_NEAR(agm::kernel_instruction_mix(8, 6, m).arithmetic_fraction(), 0.774, 0.001);
}

TEST(InstructionMix, LdrFmlaRatios) {
  const auto& m = agm::xgene();
  // 8x6 executes 7 loads and 24 fmlas per iteration (Section V-A).
  const auto mix86 = agm::kernel_instruction_mix(8, 6, m);
  EXPECT_DOUBLE_EQ(mix86.loads_per_iter, 7.0);
  EXPECT_DOUBLE_EQ(mix86.fmla_per_iter, 24.0);
  const auto mix84 = agm::kernel_instruction_mix(8, 4, m);
  EXPECT_DOUBLE_EQ(mix84.loads_per_iter, 6.0);
  EXPECT_DOUBLE_EQ(mix84.fmla_per_iter, 16.0);
}

TEST(GebpTraffic, CensusMatchesFormulas) {
  ag::BlockSizes bs;
  bs.mr = 8;
  bs.nr = 6;
  bs.kc = 512;
  bs.mc = 56;
  bs.nc = 1920;
  const auto t = agm::gebp_traffic(bs, 56, 1920, 512);
  EXPECT_DOUBLE_EQ(t.flops, 2.0 * 56 * 1920 * 512);
  EXPECT_DOUBLE_EQ(t.a_l2_to_l1, 56.0 * 512 * 320);  // nc/nr = 320 passes
  EXPECT_DOUBLE_EQ(t.b_l1_to_reg, 512.0 * 1920 * 7);  // mc/mr = 7 passes
  EXPECT_DOUBLE_EQ(t.b_l3_to_l2, 512.0 * 1920);
  EXPECT_DOUBLE_EQ(t.c_mem_to_reg, 2.0 * 56 * 1920);
  // The census gamma approaches the closed form Eq. (16).
  EXPECT_NEAR(t.gamma(), agm::gamma_gebp(8, 6, 512, 56), 0.2);
}

TEST(GebpTraffic, GammaImprovesWithGamma16Ordering) {
  ag::BlockSizes bs86{8, 6, 512, 56, 1920};
  ag::BlockSizes bs44{4, 4, 768, 32, 1280};
  const double g86 = agm::gebp_traffic(bs86, 56, 1920, 512).gamma();
  const double g44 = agm::gebp_traffic(bs44, 32, 1280, 768).gamma();
  EXPECT_GT(g86, g44);
}
