// Single-precision GEMM tests: float kernels against a scalar rank-kc
// reference, the full sgemm against reference_sgemm over size sweeps,
// transposes, alpha/beta, threads, and row-major.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/sgemm.hpp"
#include "kernels/sgemm_kernels.hpp"

using ag::index_t;

namespace {

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  ag::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  return v;
}

TEST(SKernels, AllMatchScalarReference) {
  for (const auto& k : ag::all_smicrokernels()) {
    const int mr = k.mr, nr = k.nr;
    const index_t kc = 173;
    ag::AlignedBuffer<float> a(static_cast<std::size_t>(mr * kc));
    ag::AlignedBuffer<float> b(static_cast<std::size_t>(nr * kc));
    ag::Xoshiro256 rng(3);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> c1(static_cast<std::size_t>(mr * nr), 0.5f), c2 = c1;
    k.fn(kc, 2.0f, a.data(), b.data(), 1.0f, c1.data(), mr);
    for (index_t p = 0; p < kc; ++p)
      for (int j = 0; j < nr; ++j)
        for (int i = 0; i < mr; ++i)
          c2[static_cast<std::size_t>(i + j * mr)] +=
              2.0f * a[static_cast<std::size_t>(p * mr + i)] *
              b[static_cast<std::size_t>(p * nr + j)];
    // Note c2 applies alpha per-term; kernel applies it once at the end —
    // same result up to float rounding.
    for (std::size_t i = 0; i < c1.size(); ++i)
      ASSERT_NEAR(c1[i], c2[i], 1e-3f) << k.name << " elem " << i;
  }
}

void check_sgemm(index_t m, index_t n, index_t k, int threads, float alpha = 1.0f,
                 float beta = 1.0f, ag::Trans ta = ag::Trans::NoTrans,
                 ag::Trans tb = ag::Trans::NoTrans) {
  const index_t a_rows = ta == ag::Trans::NoTrans ? m : k;
  const index_t a_cols = ta == ag::Trans::NoTrans ? k : m;
  const index_t b_rows = tb == ag::Trans::NoTrans ? k : n;
  const index_t b_cols = tb == ag::Trans::NoTrans ? n : k;
  auto a = random_floats(static_cast<std::size_t>(a_rows * a_cols), 11);
  auto b = random_floats(static_cast<std::size_t>(b_rows * b_cols), 12);
  auto c = random_floats(static_cast<std::size_t>(m * n), 13);
  auto c_ref = c;

  ag::SgemmOptions opts;
  opts.threads = threads;
  ag::sgemm(ag::Layout::ColMajor, ta, tb, m, n, k, alpha, a.data(),
            std::max<index_t>(1, a_rows), b.data(), std::max<index_t>(1, b_rows), beta,
            c.data(), std::max<index_t>(1, m), opts);
  ag::reference_sgemm(ag::Layout::ColMajor, ta, tb, m, n, k, alpha, a.data(),
                      std::max<index_t>(1, a_rows), b.data(), std::max<index_t>(1, b_rows),
                      beta, c_ref.data(), std::max<index_t>(1, m));

  const float tol = 1e-5f * static_cast<float>(std::max<index_t>(k, 1)) *
                    (std::abs(alpha) + std::abs(beta) + 1);
  for (std::size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], c_ref[i], tol) << "m=" << m << " n=" << n << " k=" << k
                                     << " t=" << threads << " elem " << i;
}

class SgemmSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(SgemmSizes, SquareSerial) { check_sgemm(GetParam(), GetParam(), GetParam(), 1); }

INSTANTIATE_TEST_SUITE_P(Sweep, SgemmSizes,
                         ::testing::Values(1, 3, 15, 16, 17, 33, 64, 100, 129, 200));

TEST(Sgemm, Threads) {
  check_sgemm(200, 150, 80, 2);
  check_sgemm(333, 90, 61, 4);
}

TEST(Sgemm, Transposes) {
  for (ag::Trans ta : {ag::Trans::NoTrans, ag::Trans::Trans})
    for (ag::Trans tb : {ag::Trans::NoTrans, ag::Trans::Trans})
      check_sgemm(70, 55, 40, 1, 1.0f, 1.0f, ta, tb);
}

TEST(Sgemm, AlphaBeta) {
  for (float alpha : {0.0f, 2.0f, -1.0f})
    for (float beta : {0.0f, 1.0f, 0.5f}) check_sgemm(40, 30, 25, 1, alpha, beta);
}

TEST(Sgemm, RowMajor) {
  const float a[] = {1, 2, 3, 4};  // row-major 2x2
  const float b[] = {5, 6, 7, 8};
  float c[4] = {};
  ag::sgemm(ag::Layout::RowMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, 2, 2, 2, 1.0f, a, 2,
            b, 2, 0.0f, c, 2);
  EXPECT_FLOAT_EQ(c[0], 1 * 5 + 2 * 7);
  EXPECT_FLOAT_EQ(c[1], 1 * 6 + 2 * 8);
  EXPECT_FLOAT_EQ(c[2], 3 * 5 + 4 * 7);
  EXPECT_FLOAT_EQ(c[3], 3 * 6 + 4 * 8);
}

TEST(Sgemm, CustomBlockSizes) {
  ag::SgemmOptions opts;
  opts.kc = 16;
  opts.mc = 32;
  opts.nc = 24;
  auto a = random_floats(100 * 90, 21);
  auto b = random_floats(90 * 80, 22);
  auto c = random_floats(100 * 80, 23);
  auto c_ref = c;
  ag::sgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, 100, 80, 90, 1.0f,
            a.data(), 100, b.data(), 90, 1.0f, c.data(), 100, opts);
  ag::reference_sgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, 100, 80,
                      90, 1.0f, a.data(), 100, b.data(), 90, 1.0f, c_ref.data(), 100);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_NEAR(c[i], c_ref[i], 1e-3f);
}

TEST(Sgemm, Validates) {
  float x[4] = {};
  EXPECT_THROW(ag::sgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, 2, 2, 2,
                         1.0f, x, 1, x, 2, 0.0f, x, 2),
               ag::InvalidArgument);
}

}  // namespace
