// Thread-safety: concurrent dgemm calls from independent host threads
// (the "batched GEMM" usage pattern) must be correct both when each
// caller has its own Context and when they share one read-only serial
// Context (per-call scratch buffers make the serial path reentrant).
// The *SetThreads* stress cases additionally race thread-count
// reconfiguration (Context::set_threads on per-thread contexts,
// armgemm_set_num_threads on the process-global C API state) against
// in-flight dgemm calls; run them under -DAG_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "capi/armgemm_cblas.h"
#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "core/gemm_batch.hpp"
#include "threading/persistent_pool.hpp"

using ag::index_t;
using ag::Matrix;

namespace {

struct Problem {
  Matrix<double> a, b, c, c_ref;
  index_t m, n, k;
};

Problem make_problem(index_t m, index_t n, index_t k, std::uint64_t seed) {
  Problem p{ag::random_matrix(m, k, seed), ag::random_matrix(k, n, seed + 1),
            ag::random_matrix(m, n, seed + 2), Matrix<double>(0, 0), m, n, k};
  p.c_ref = p.c;
  return p;
}

void verify(const Problem& p) {
  Matrix<double> expect(p.c_ref);
  ag::blocked_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, p.m, p.n,
                    p.k, 1.0, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 1.0, expect.data(),
                    expect.ld());
  const auto cmp = ag::compare_gemm_result(p.c.view(), expect.view(), p.k, 1.0, 1.0, 1.0, 1.0,
                                           1.0);
  EXPECT_TRUE(cmp.ok) << p.m << "x" << p.n << "x" << p.k << " diff " << cmp.max_diff;
}

TEST(ConcurrentGemm, SharedSerialContext) {
  const ag::Context ctx(ag::KernelShape{8, 6}, 1);  // read-only, shared
  std::vector<Problem> problems;
  for (int i = 0; i < 6; ++i)
    problems.push_back(make_problem(90 + 7 * i, 70 + 5 * i, 50 + 3 * i, 1000 + 10 * i));

  std::vector<std::thread> workers;
  for (auto& p : problems) {
    workers.emplace_back([&p, &ctx] {
      for (int rep = 0; rep < 3; ++rep) {
        Matrix<double> c(p.c_ref);
        ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, p.m, p.n, p.k,
                  1.0, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 1.0, c.data(), c.ld(), ctx);
        p.c = std::move(c);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& p : problems) verify(p);
}

// Each host thread owns a Context and keeps flipping its thread count
// between dgemm calls while its siblings are mid-flight on theirs: pool
// teardown/recreation in one context must never perturb another.
TEST(ConcurrentGemm, SetThreadsRacingInFlightCallsOnSeparateContexts) {
  constexpr int kThreads = 4;
  constexpr int kReps = 8;
  std::vector<Problem> problems;
  for (int i = 0; i < kThreads; ++i)
    problems.push_back(make_problem(120 + 8 * i, 72 + 6 * i, 48 + 4 * i, 3000 + 10 * i));

  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&problems, i] {
      ag::Context ctx(ag::KernelShape{8, 6}, 1);
      auto& p = problems[static_cast<std::size_t>(i)];
      for (int rep = 0; rep < kReps; ++rep) {
        ctx.set_threads(1 + (rep + i) % 3);  // 1, 2, 3 threads in rotation
        Matrix<double> c(p.c_ref);
        ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, p.m, p.n, p.k,
                  1.0, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 1.0, c.data(), c.ld(), ctx);
        p.c = std::move(c);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& p : problems) verify(p);
}

// armgemm_set_num_threads mutates process-global state while cblas_dgemm
// calls are in flight on other host threads. Each caller owns a
// thread-local context, so the new count may only be observed between
// calls — results must stay correct throughout and TSan must stay quiet.
TEST(ConcurrentGemm, CapiSetNumThreadsRacingInFlightCalls) {
  constexpr int kWorkers = 3;
  constexpr int kReps = 10;
  const int threads_before = armgemm_get_num_threads();
  std::vector<Problem> problems;
  for (int i = 0; i < kWorkers; ++i)
    problems.push_back(make_problem(100 + 9 * i, 80 + 7 * i, 56 + 5 * i, 4000 + 10 * i));

  std::atomic<bool> stop{false};
  std::thread controller([&stop] {
    int t = 1;
    while (!stop.load()) {
      armgemm_set_num_threads(1 + t % 4);
      ++t;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int i = 0; i < kWorkers; ++i) {
    workers.emplace_back([&problems, i] {
      auto& p = problems[static_cast<std::size_t>(i)];
      for (int rep = 0; rep < kReps; ++rep) {
        Matrix<double> c(p.c_ref);
        cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, static_cast<int>(p.m),
                    static_cast<int>(p.n), static_cast<int>(p.k), 1.0, p.a.data(),
                    static_cast<int>(p.a.ld()), p.b.data(), static_cast<int>(p.b.ld()), 1.0,
                    c.data(), static_cast<int>(c.ld()));
        p.c = std::move(c);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  controller.join();
  armgemm_set_num_threads(threads_before);
  for (const auto& p : problems) verify(p);
}

// Batch submissions racing PersistentPool::resize: a controller keeps
// growing and shrinking the persistent worker set (including all the way
// to zero workers) while callers push batches through the queue. Shrink
// joins surplus workers mid-stream and grow spawns into a live queue;
// callers always help execute, so forward progress must hold even in the
// zero-worker window. Results must stay correct throughout; run under
// -DAG_SANITIZE=thread for the race proof.
TEST(ConcurrentGemm, BatchCallsRacingPersistentPoolResize) {
  constexpr int kCallers = 3;
  constexpr int kReps = 6;
  std::vector<Problem> problems;
  for (int i = 0; i < kCallers; ++i)
    problems.push_back(make_problem(96 + 8 * i, 64 + 6 * i, 48 + 4 * i, 5000 + 10 * i));

  std::atomic<bool> stop{false};
  std::thread controller([&stop] {
    int t = 0;
    while (!stop.load()) {
      ag::PersistentPool::instance().resize(t % 4);  // 0..3 workers in rotation
      ++t;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> callers;
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&problems, i] {
      ag::Context ctx(ag::KernelShape{8, 6}, 3);
      auto& p = problems[static_cast<std::size_t>(i)];
      for (int rep = 0; rep < kReps; ++rep) {
        Matrix<double> c(p.c_ref);
        ag::GemmBatchEntry e;
        e.m = p.m;
        e.n = p.n;
        e.k = p.k;
        e.alpha = 1.0;
        e.beta = 1.0;
        e.a = p.a.data();
        e.lda = p.a.ld();
        e.b = p.b.data();
        e.ldb = p.b.ld();
        e.c = c.data();
        e.ldc = c.ld();
        ag::dgemm_batch(ag::Layout::ColMajor, &e, 1, ctx);
        p.c = std::move(c);
      }
    });
  }
  for (auto& w : callers) w.join();
  stop.store(true);
  controller.join();
  for (const auto& p : problems) verify(p);
}

TEST(ConcurrentGemm, IndependentContexts) {
  std::vector<Problem> problems;
  for (int i = 0; i < 4; ++i)
    problems.push_back(make_problem(110, 85, 64, 2000 + 10 * i));

  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    workers.emplace_back([&problems, i] {
      // Each host thread owns a Context; shapes alternate.
      ag::Context ctx(i % 2 ? ag::KernelShape{8, 4} : ag::KernelShape{8, 6}, 1);
      auto& p = problems[i];
      ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, p.m, p.n, p.k,
                1.0, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 1.0, p.c.data(), p.c.ld(),
                ctx);
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& p : problems) verify(p);
}

}  // namespace
