// RAII guards for the process-wide runtime knobs (common/knobs.hpp), so
// tests can pin a policy without leaking it into other tests in the same
// binary.
#pragma once

#include <cstdint>
#include <string>

#include "common/knobs.hpp"
#include "threading/topology.hpp"

namespace agtest {

/// Pins the small-matrix fast-path threshold for the guard's lifetime.
/// ScopedSmallMnk(0) forces every shape down the packed/blocked path —
/// used by tests that assert pack-layer blocking arithmetic on shapes
/// that would otherwise dispatch to the fast path.
class ScopedSmallMnk {
 public:
  explicit ScopedSmallMnk(std::int64_t t) : prev_(ag::small_gemm_mnk()) {
    ag::set_small_gemm_mnk(t);
  }
  ~ScopedSmallMnk() { ag::set_small_gemm_mnk(prev_); }

  ScopedSmallMnk(const ScopedSmallMnk&) = delete;
  ScopedSmallMnk& operator=(const ScopedSmallMnk&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins the barrier/fork-join spin window for the guard's lifetime.
/// ScopedSpinUs(0) forces the immediate-block path.
class ScopedSpinUs {
 public:
  explicit ScopedSpinUs(std::int64_t us) : prev_(ag::spin_wait_us()) {
    ag::set_spin_wait_us(us);
  }
  ~ScopedSpinUs() { ag::set_spin_wait_us(prev_); }

  ScopedSpinUs(const ScopedSpinUs&) = delete;
  ScopedSpinUs& operator=(const ScopedSpinUs&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins the kernel software-prefetch distances (ARMGEMM_PREA/PREB) for
/// the guard's lifetime. ScopedPrefetch(0, 0) turns both streams off.
class ScopedPrefetch {
 public:
  ScopedPrefetch(std::int64_t prea_bytes, std::int64_t preb_bytes)
      : prev_a_(ag::prefetch_a_bytes()), prev_b_(ag::prefetch_b_bytes()) {
    ag::set_prefetch_a_bytes(prea_bytes);
    ag::set_prefetch_b_bytes(preb_bytes);
  }
  ~ScopedPrefetch() {
    ag::set_prefetch_a_bytes(prev_a_);
    ag::set_prefetch_b_bytes(prev_b_);
  }

  ScopedPrefetch(const ScopedPrefetch&) = delete;
  ScopedPrefetch& operator=(const ScopedPrefetch&) = delete;

 private:
  std::int64_t prev_a_;
  std::int64_t prev_b_;
};

/// Pins the persistent-pool admission limit (ARMGEMM_QUEUE_DEPTH) for the
/// guard's lifetime. ScopedQueueDepth(1) forces near-total overflow, so
/// almost every batch ticket runs inline on its caller.
class ScopedQueueDepth {
 public:
  explicit ScopedQueueDepth(std::int64_t depth) : prev_(ag::queue_depth()) {
    ag::set_queue_depth(depth);
  }
  ~ScopedQueueDepth() { ag::set_queue_depth(prev_); }

  ScopedQueueDepth(const ScopedQueueDepth&) = delete;
  ScopedQueueDepth& operator=(const ScopedQueueDepth&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins the packed-panel cache capacity (ARMGEMM_PANEL_CACHE_MB) for the
/// guard's lifetime. ScopedPanelCacheMb(0) disables panel sharing, so
/// every batch ticket packs B privately.
class ScopedPanelCacheMb {
 public:
  explicit ScopedPanelCacheMb(std::int64_t mb) : prev_(ag::panel_cache_mb()) {
    ag::set_panel_cache_mb(mb);
  }
  ~ScopedPanelCacheMb() { ag::set_panel_cache_mb(prev_); }

  ScopedPanelCacheMb(const ScopedPanelCacheMb&) = delete;
  ScopedPanelCacheMb& operator=(const ScopedPanelCacheMb&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins an emulated topology (ARMGEMM_CPU_CLASSES + ARMGEMM_NUMA_NODES)
/// for the guard's lifetime and rebuilds the Topology snapshot on both
/// edges, so the runtime actually schedules against the emulation.
/// ScopedCpuClasses("2x2.0,2x1.0") is a 2+2 big.LITTLE at 2:1;
/// nodes > 0 additionally splits the cpus into that many NUMA nodes.
class ScopedCpuClasses {
 public:
  explicit ScopedCpuClasses(const std::string& spec, std::int64_t nodes = 0)
      : prev_spec_(ag::cpu_classes_spec()), prev_nodes_(ag::numa_nodes_override()) {
    ag::set_cpu_classes_spec(spec);
    ag::set_numa_nodes_override(nodes);
    ag::Topology::refresh();
  }
  ~ScopedCpuClasses() {
    ag::set_cpu_classes_spec(prev_spec_);
    ag::set_numa_nodes_override(prev_nodes_);
    ag::Topology::refresh();
  }

  ScopedCpuClasses(const ScopedCpuClasses&) = delete;
  ScopedCpuClasses& operator=(const ScopedCpuClasses&) = delete;

 private:
  std::string prev_spec_;
  std::int64_t prev_nodes_;
};

/// Pins worker-affinity pinning (ARMGEMM_AFFINITY) for the guard's
/// lifetime. Only pool workers started while the guard is live pin.
class ScopedAffinity {
 public:
  explicit ScopedAffinity(bool enabled) : prev_(ag::affinity_enabled()) {
    ag::set_affinity_enabled(enabled);
  }
  ~ScopedAffinity() { ag::set_affinity_enabled(prev_); }

  ScopedAffinity(const ScopedAffinity&) = delete;
  ScopedAffinity& operator=(const ScopedAffinity&) = delete;

 private:
  bool prev_;
};

/// Pins the per-node panel-replication threshold
/// (ARMGEMM_PANEL_REPLICATE_KB) for the guard's lifetime.
/// ScopedPanelReplicateKb(0) replicates every cached panel per node.
class ScopedPanelReplicateKb {
 public:
  explicit ScopedPanelReplicateKb(std::int64_t kb) : prev_(ag::panel_replicate_kb()) {
    ag::set_panel_replicate_kb(kb);
  }
  ~ScopedPanelReplicateKb() { ag::set_panel_replicate_kb(prev_); }

  ScopedPanelReplicateKb(const ScopedPanelReplicateKb&) = delete;
  ScopedPanelReplicateKb& operator=(const ScopedPanelReplicateKb&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins heterogeneity-weighted ticket partitioning
/// (ARMGEMM_WEIGHTED_SCHEDULE) for the guard's lifetime.
class ScopedWeightedSchedule {
 public:
  explicit ScopedWeightedSchedule(bool enabled) : prev_(ag::weighted_schedule_enabled()) {
    ag::set_weighted_schedule_enabled(enabled);
  }
  ~ScopedWeightedSchedule() { ag::set_weighted_schedule_enabled(prev_); }

  ScopedWeightedSchedule(const ScopedWeightedSchedule&) = delete;
  ScopedWeightedSchedule& operator=(const ScopedWeightedSchedule&) = delete;

 private:
  bool prev_;
};

/// Pins the cross-node steal-deferral threshold
/// (ARMGEMM_CROSS_NODE_STEAL) for the guard's lifetime.
class ScopedCrossNodeSteal {
 public:
  explicit ScopedCrossNodeSteal(std::int64_t sweeps)
      : prev_(ag::cross_node_steal_threshold()) {
    ag::set_cross_node_steal_threshold(sweeps);
  }
  ~ScopedCrossNodeSteal() { ag::set_cross_node_steal_threshold(prev_); }

  ScopedCrossNodeSteal(const ScopedCrossNodeSteal&) = delete;
  ScopedCrossNodeSteal& operator=(const ScopedCrossNodeSteal&) = delete;

 private:
  std::int64_t prev_;
};

}  // namespace agtest
