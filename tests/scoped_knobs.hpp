// RAII guards for the process-wide runtime knobs (common/knobs.hpp), so
// tests can pin a policy without leaking it into other tests in the same
// binary.
#pragma once

#include <cstdint>

#include "common/knobs.hpp"

namespace agtest {

/// Pins the small-matrix fast-path threshold for the guard's lifetime.
/// ScopedSmallMnk(0) forces every shape down the packed/blocked path —
/// used by tests that assert pack-layer blocking arithmetic on shapes
/// that would otherwise dispatch to the fast path.
class ScopedSmallMnk {
 public:
  explicit ScopedSmallMnk(std::int64_t t) : prev_(ag::small_gemm_mnk()) {
    ag::set_small_gemm_mnk(t);
  }
  ~ScopedSmallMnk() { ag::set_small_gemm_mnk(prev_); }

  ScopedSmallMnk(const ScopedSmallMnk&) = delete;
  ScopedSmallMnk& operator=(const ScopedSmallMnk&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins the barrier/fork-join spin window for the guard's lifetime.
/// ScopedSpinUs(0) forces the immediate-block path.
class ScopedSpinUs {
 public:
  explicit ScopedSpinUs(std::int64_t us) : prev_(ag::spin_wait_us()) {
    ag::set_spin_wait_us(us);
  }
  ~ScopedSpinUs() { ag::set_spin_wait_us(prev_); }

  ScopedSpinUs(const ScopedSpinUs&) = delete;
  ScopedSpinUs& operator=(const ScopedSpinUs&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins the kernel software-prefetch distances (ARMGEMM_PREA/PREB) for
/// the guard's lifetime. ScopedPrefetch(0, 0) turns both streams off.
class ScopedPrefetch {
 public:
  ScopedPrefetch(std::int64_t prea_bytes, std::int64_t preb_bytes)
      : prev_a_(ag::prefetch_a_bytes()), prev_b_(ag::prefetch_b_bytes()) {
    ag::set_prefetch_a_bytes(prea_bytes);
    ag::set_prefetch_b_bytes(preb_bytes);
  }
  ~ScopedPrefetch() {
    ag::set_prefetch_a_bytes(prev_a_);
    ag::set_prefetch_b_bytes(prev_b_);
  }

  ScopedPrefetch(const ScopedPrefetch&) = delete;
  ScopedPrefetch& operator=(const ScopedPrefetch&) = delete;

 private:
  std::int64_t prev_a_;
  std::int64_t prev_b_;
};

/// Pins the persistent-pool admission limit (ARMGEMM_QUEUE_DEPTH) for the
/// guard's lifetime. ScopedQueueDepth(1) forces near-total overflow, so
/// almost every batch ticket runs inline on its caller.
class ScopedQueueDepth {
 public:
  explicit ScopedQueueDepth(std::int64_t depth) : prev_(ag::queue_depth()) {
    ag::set_queue_depth(depth);
  }
  ~ScopedQueueDepth() { ag::set_queue_depth(prev_); }

  ScopedQueueDepth(const ScopedQueueDepth&) = delete;
  ScopedQueueDepth& operator=(const ScopedQueueDepth&) = delete;

 private:
  std::int64_t prev_;
};

/// Pins the packed-panel cache capacity (ARMGEMM_PANEL_CACHE_MB) for the
/// guard's lifetime. ScopedPanelCacheMb(0) disables panel sharing, so
/// every batch ticket packs B privately.
class ScopedPanelCacheMb {
 public:
  explicit ScopedPanelCacheMb(std::int64_t mb) : prev_(ag::panel_cache_mb()) {
    ag::set_panel_cache_mb(mb);
  }
  ~ScopedPanelCacheMb() { ag::set_panel_cache_mb(prev_); }

  ScopedPanelCacheMb(const ScopedPanelCacheMb&) = delete;
  ScopedPanelCacheMb& operator=(const ScopedPanelCacheMb&) = delete;

 private:
  std::int64_t prev_;
};

}  // namespace agtest
