// Register-kernel tests: every registered microkernel (scalar and SIMD)
// computes C += alpha * A_sliver * B_sliver exactly like a reference
// rank-kc accumulation, for various kc values, alphas and ldc strides.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "kernels/avx2_kernels.hpp"
#include "kernels/microkernel.hpp"
#include "kernels/neon_kernels.hpp"

using ag::AlignedBuffer;
using ag::index_t;
using ag::KernelShape;
using ag::Microkernel;

namespace {

// Reference rank-kc update on packed slivers.
void reference_update(int mr, int nr, index_t kc, double alpha, const double* a,
                      const double* b, double* c, index_t ldc) {
  for (index_t p = 0; p < kc; ++p)
    for (int j = 0; j < nr; ++j)
      for (int i = 0; i < mr; ++i)
        c[i + j * ldc] += alpha * a[p * mr + i] * b[p * nr + j];
}

struct KernelCase {
  std::string name;
  index_t kc;
  double alpha;
  index_t ldc_extra;
};

void run_case(const Microkernel& k, index_t kc, double alpha, index_t ldc_extra) {
  const int mr = k.shape.mr, nr = k.shape.nr;
  const index_t ldc = mr + ldc_extra;
  ag::Xoshiro256 rng(99);
  AlignedBuffer<double> a(static_cast<std::size_t>(mr * kc));
  AlignedBuffer<double> b(static_cast<std::size_t>(nr * kc));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  std::vector<double> c1(static_cast<std::size_t>(ldc * nr));
  for (auto& v : c1) v = rng.uniform(-1, 1);
  std::vector<double> c2 = c1;

  k.fn(kc, alpha, a.data(), b.data(), 1.0, c1.data(), ldc);
  reference_update(mr, nr, kc, alpha, a.data(), b.data(), c2.data(), ldc);

  const double tol = 1e-13 * static_cast<double>(kc ? kc : 1);
  for (std::size_t i = 0; i < c1.size(); ++i)
    ASSERT_NEAR(c1[i], c2[i], tol) << k.name << " kc=" << kc << " elem " << i;
}

class AllKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(AllKernels, MatchesReferenceVariousKc) {
  const Microkernel& k = ag::microkernel_by_name(GetParam());
  for (index_t kc : {1, 2, 3, 7, 64, 257}) run_case(k, kc, 1.0, 0);
}

TEST_P(AllKernels, AlphaScaling) {
  const Microkernel& k = ag::microkernel_by_name(GetParam());
  for (double alpha : {1.0, -1.0, 2.5, 0.0}) run_case(k, 16, alpha, 0);
}

TEST_P(AllKernels, StridedC) {
  const Microkernel& k = ag::microkernel_by_name(GetParam());
  for (index_t extra : {1, 5, 100}) run_case(k, 32, 1.0, extra);
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : ag::all_microkernels()) names.push_back(k.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Registry, AllKernels, ::testing::ValuesIn(kernel_names()));

TEST(Registry, ContainsPaperShapes) {
  for (KernelShape s : ag::paper_kernel_shapes()) {
    const Microkernel& k = ag::best_microkernel(s);
    EXPECT_EQ(k.shape, s);
    EXPECT_NE(k.fn, nullptr);
  }
}

TEST(Registry, BestPrefersSimd) {
  if (!ag::avx2_kernels_available() && !ag::neon_kernels_available())
    GTEST_SKIP() << "no SIMD kernels in this build";
  const Microkernel& k = ag::best_microkernel({8, 6});
  EXPECT_NE(k.isa, ag::KernelIsa::Scalar);
}

TEST(Registry, UnknownNamesThrow) {
  EXPECT_THROW(ag::microkernel_by_name("no_such_kernel"), ag::InvalidArgument);
  EXPECT_THROW(ag::best_microkernel({3, 9}), ag::InvalidArgument);
}

TEST(Registry, GammaValues) {
  EXPECT_NEAR((KernelShape{8, 6}.gamma()), 6.857, 1e-3);
  EXPECT_NEAR((KernelShape{4, 4}.gamma()), 4.0, 1e-12);
  EXPECT_EQ((KernelShape{8, 6}.to_string()), "8x6");
}

// SIMD and scalar kernels of the same shape must agree bit-for-bit up to
// FMA contraction differences (bounded, not exact).
TEST(Consistency, SimdMatchesScalar) {
  for (const auto& k : ag::all_microkernels()) {
    if (k.isa == ag::KernelIsa::Scalar) continue;
    const Microkernel& scalar = ag::microkernel_by_name(
        "generic_" + k.shape.to_string());
    const int mr = k.shape.mr, nr = k.shape.nr;
    const index_t kc = 128;
    ag::Xoshiro256 rng(5);
    AlignedBuffer<double> a(static_cast<std::size_t>(mr * kc));
    AlignedBuffer<double> b(static_cast<std::size_t>(nr * kc));
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.uniform(-1, 1);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
    std::vector<double> c1(static_cast<std::size_t>(mr * nr), 0.0), c2 = c1;
    k.fn(kc, 1.0, a.data(), b.data(), 1.0, c1.data(), mr);
    scalar.fn(kc, 1.0, a.data(), b.data(), 1.0, c2.data(), mr);
    for (std::size_t i = 0; i < c1.size(); ++i)
      EXPECT_NEAR(c1[i], c2[i], 1e-12) << k.name << " elem " << i;
  }
}

}  // namespace
