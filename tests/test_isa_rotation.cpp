// Register rotation (Eq. 12 / Table I): the solver must produce a valid
// per-copy register assignment whose bottleneck reload distance is at
// least the paper's 7, and strictly better than the non-rotated kernel.
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <set>

#include "isa/rotation.hpp"

using ag::isa::identity_rotation;
using ag::isa::make_read_schedule;
using ag::isa::ReadSchedule;
using ag::isa::RotationPlan;
using ag::isa::solve_rotation;

TEST(ReadScheduleTest, Canonical8x6Order) {
  const ReadSchedule s = make_read_schedule({8, 6});
  EXPECT_EQ(s.fmla_count, 24);
  ASSERT_EQ(s.roles.size(), 7u);  // 4 A halves + 3 B halves
  // A-half h is read across fmlas h*6 .. h*6+5 (Figure 8's row-major order).
  EXPECT_EQ(s.first_read[0], 0);
  EXPECT_EQ(s.last_read[0], 5);
  EXPECT_EQ(s.first_read[3], 18);
  EXPECT_EQ(s.last_read[3], 23);
  // B-half q is first read at fmla 2q and last at 18 + 2q + 1.
  EXPECT_EQ(s.first_read[4], 0);
  EXPECT_EQ(s.last_read[4], 19);
  EXPECT_EQ(s.first_read[6], 4);
  EXPECT_EQ(s.last_read[6], 23);
}

TEST(ReadScheduleTest, RejectsOddShapes) {
  EXPECT_THROW(make_read_schedule({5, 5}), ag::InvalidArgument);
}

TEST(RotationTest, MeetsPaperDistance8x6) {
  const RotationPlan plan = solve_rotation({8, 6}, 8);
  EXPECT_EQ(plan.num_roles, 7);
  EXPECT_EQ(plan.num_registers, 8);
  // The paper reports an optimal distance of 7 for its rotation; our exact
  // bottleneck solver must do at least as well.
  EXPECT_GE(plan.min_reload_distance, 7);
  EXPECT_TRUE(plan.rotated);
}

TEST(RotationTest, BeatsIdentity8x6) {
  const RotationPlan rotated = solve_rotation({8, 6}, 8);
  const RotationPlan fixed = identity_rotation({8, 6}, 8, 8);
  EXPECT_GT(rotated.min_reload_distance, fixed.min_reload_distance);
  EXPECT_FALSE(fixed.rotated);
}

TEST(RotationTest, TableIsValidAssignment) {
  const RotationPlan plan = solve_rotation({8, 6}, 8);
  ASSERT_EQ(static_cast<int>(plan.table.size()), plan.unroll);
  for (const auto& copy : plan.table) {
    ASSERT_EQ(static_cast<int>(copy.size()), plan.num_roles);
    std::set<int> regs(copy.begin(), copy.end());
    EXPECT_EQ(static_cast<int>(regs.size()), plan.num_roles)
        << "two roles share a register in one copy";
    for (int reg : copy) {
      EXPECT_GE(reg, 0);
      EXPECT_LT(reg, plan.num_registers);
    }
  }
}

TEST(RotationTest, TableIsPeriodic) {
  const RotationPlan plan = solve_rotation({8, 6}, 8);
  // Applying the permutation `unroll` times returns to copy 0's layout:
  // verified by regenerating copy 0 from the last copy.
  ASSERT_GE(plan.unroll, 1);
  // The rotation period divides into the register count's permutation
  // group; it must be > 1 for a genuine rotation.
  EXPECT_GT(plan.unroll, 1);
  EXPECT_LE(plan.unroll, 16);
}

TEST(RotationTest, IdentityTableRepeatsCopy0) {
  const RotationPlan plan = identity_rotation({8, 6}, 8, 4);
  for (const auto& copy : plan.table) EXPECT_EQ(copy, plan.table[0]);
}

TEST(RotationTest, Works8x4) {
  // 8x4: 6 roles, 16 free registers after the C tile (capped internally).
  const RotationPlan plan = solve_rotation({8, 4}, 16);
  EXPECT_EQ(plan.num_roles, 6);
  EXPECT_GE(plan.min_reload_distance, 1);
  const RotationPlan fixed = identity_rotation({8, 4}, 16, plan.unroll);
  EXPECT_GE(plan.min_reload_distance, fixed.min_reload_distance);
}

TEST(RotationTest, Works4x4) {
  const RotationPlan plan = solve_rotation({4, 4}, 24);
  EXPECT_EQ(plan.num_roles, 4);
  EXPECT_GE(plan.min_reload_distance, 1);
}

TEST(RotationTest, RequiresSpareRegister) {
  EXPECT_THROW(solve_rotation({8, 6}, 7), ag::InvalidArgument);
}

TEST(RotationTest, TableTextRendersAllCopies) {
  const RotationPlan plan = solve_rotation({8, 6}, 8);
  const std::string text = plan.table_text();
  EXPECT_NE(text.find("a0"), std::string::npos);
  EXPECT_NE(text.find("b2"), std::string::npos);
  EXPECT_NE(text.find("#0"), std::string::npos);
}
