// Hardening tests for the env-knob parsers (common/knobs detail layer)
// and round-trip tests for the phase/forensics knob accessors.
//
// The parse functions take the raw string directly (no setenv games), so
// every rejection class — garbage, trailing junk, negatives, overflow,
// NaN — is exercised deterministically, and the one-time stderr warning
// contract is observable via gtest's capture helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "common/knobs.hpp"

namespace {

using ag::detail::parse_env_double;
using ag::detail::parse_env_int64;

// ---- integer knobs ---------------------------------------------------------

TEST(KnobParseInt, UnsetAndEmptyFallBackSilently) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(42, parse_env_int64("ARMGEMM_TEST", nullptr, 42));
  EXPECT_EQ(42, parse_env_int64("ARMGEMM_TEST", "", 42));
  EXPECT_EQ("", testing::internal::GetCapturedStderr());
}

TEST(KnobParseInt, ParsesPlainAndTrailingWhitespace) {
  EXPECT_EQ(128, parse_env_int64("ARMGEMM_TEST", "128", 0));
  EXPECT_EQ(0, parse_env_int64("ARMGEMM_TEST", "0", 7));
  EXPECT_EQ(128, parse_env_int64("ARMGEMM_TEST", "128  ", 0));
  EXPECT_EQ(128, parse_env_int64("ARMGEMM_TEST", "  128", 0));  // strtoll skips
}

TEST(KnobParseInt, GarbageFallsBackWithWarning) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(50, parse_env_int64("ARMGEMM_SPIN_US", "fast", 50));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(std::string::npos, err.find("ARMGEMM_SPIN_US"));
  EXPECT_NE(std::string::npos, err.find("'fast'"));
  EXPECT_NE(std::string::npos, err.find("default 50"));
}

TEST(KnobParseInt, TrailingGarbageFallsBack) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(6, parse_env_int64("ARMGEMM_SMALL_MNK", "12abc", 6));
  EXPECT_NE(std::string::npos,
            testing::internal::GetCapturedStderr().find("not an integer"));
}

TEST(KnobParseInt, NegativeFallsBack) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(8, parse_env_int64("ARMGEMM_QUEUE_DEPTH", "-3", 8));
  EXPECT_NE(std::string::npos,
            testing::internal::GetCapturedStderr().find("negative"));
}

TEST(KnobParseInt, OverflowFallsBack) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(8, parse_env_int64("ARMGEMM_QUEUE_DEPTH",
                               "99999999999999999999999999", 8));
  EXPECT_NE(std::string::npos,
            testing::internal::GetCapturedStderr().find("out of range"));
}

TEST(KnobParseInt, Int64MaxIsAccepted) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(max, parse_env_int64("ARMGEMM_TEST", "9223372036854775807", 0));
}

// ---- floating-point knobs --------------------------------------------------

TEST(KnobParseDouble, UnsetAndEmptyFallBackSilently) {
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(0.25, parse_env_double("ARMGEMM_TEST", nullptr, 0.25));
  EXPECT_DOUBLE_EQ(0.25, parse_env_double("ARMGEMM_TEST", "", 0.25));
  EXPECT_EQ("", testing::internal::GetCapturedStderr());
}

TEST(KnobParseDouble, ParsesDecimalAndScientific) {
  EXPECT_DOUBLE_EQ(0.5, parse_env_double("ARMGEMM_TEST", "0.5", 1.0));
  EXPECT_DOUBLE_EQ(1500.0, parse_env_double("ARMGEMM_TEST", "1.5e3", 1.0));
}

TEST(KnobParseDouble, GarbageFallsBackWithWarning) {
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(0.25,
                   parse_env_double("ARMGEMM_DRIFT_THRESHOLD", "lots", 0.25));
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(std::string::npos, err.find("ARMGEMM_DRIFT_THRESHOLD"));
  EXPECT_NE(std::string::npos, err.find("not a number"));
}

TEST(KnobParseDouble, TrailingGarbageFallsBack) {
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(8.0,
                   parse_env_double("ARMGEMM_SLOW_CALL_FACTOR", "3x", 8.0));
  EXPECT_NE(std::string::npos,
            testing::internal::GetCapturedStderr().find("not a number"));
}

TEST(KnobParseDouble, NegativeFallsBack) {
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(60.0,
                   parse_env_double("ARMGEMM_FORENSICS_INTERVAL", "-1", 60.0,
                                    /*allow_zero=*/true));
  EXPECT_NE(std::string::npos,
            testing::internal::GetCapturedStderr().find("negative"));
}

TEST(KnobParseDouble, NanAndInfinityFallBack) {
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(0.25, parse_env_double("ARMGEMM_TEST", "nan", 0.25));
  EXPECT_DOUBLE_EQ(0.25, parse_env_double("ARMGEMM_TEST", "inf", 0.25));
  EXPECT_DOUBLE_EQ(0.25, parse_env_double("ARMGEMM_TEST", "1e999", 0.25));
  EXPECT_NE(std::string::npos,
            testing::internal::GetCapturedStderr().find("out of range"));
}

TEST(KnobParseDouble, ZeroPolicyFollowsAllowZero) {
  // Knobs where 0 means "disabled" accept it; strictly-positive knobs
  // (e.g. the drift threshold) reject it with the warning.
  EXPECT_DOUBLE_EQ(0.0, parse_env_double("ARMGEMM_TEST", "0", 60.0,
                                         /*allow_zero=*/true));
  testing::internal::CaptureStderr();
  EXPECT_DOUBLE_EQ(0.25, parse_env_double("ARMGEMM_TEST", "0", 0.25,
                                          /*allow_zero=*/false));
  EXPECT_NE(std::string::npos,
            testing::internal::GetCapturedStderr().find("not positive"));
}

// ---- accessor round-trips --------------------------------------------------

TEST(KnobAccessors, PhaseAttributionRoundTrips) {
  const bool prev = ag::phase_attribution_enabled();
  ag::set_phase_attribution_enabled(false);
  EXPECT_FALSE(ag::phase_attribution_enabled());
  ag::set_phase_attribution_enabled(true);
  EXPECT_TRUE(ag::phase_attribution_enabled());
  ag::set_phase_attribution_enabled(prev);
}

TEST(KnobAccessors, SlowCallFactorClampsNegativeToDisabled) {
  const double prev = ag::slow_call_factor();
  ag::set_slow_call_factor(3.5);
  EXPECT_DOUBLE_EQ(3.5, ag::slow_call_factor());
  ag::set_slow_call_factor(-2.0);  // negative means "disable", stored as 0
  EXPECT_DOUBLE_EQ(0.0, ag::slow_call_factor());
  ag::set_slow_call_factor(prev);
}

TEST(KnobAccessors, ForensicsDirRoundTrips) {
  const std::string prev = ag::forensics_dir();
  ag::set_forensics_dir("/tmp/armgemm-forensics-test");
  EXPECT_EQ("/tmp/armgemm-forensics-test", ag::forensics_dir());
  ag::set_forensics_dir("");
  EXPECT_EQ("", ag::forensics_dir());
  ag::set_forensics_dir(prev);
}

TEST(KnobAccessors, ForensicsIntervalClampsNegativeToUnlimited) {
  const double prev = ag::forensics_interval_s();
  ag::set_forensics_interval_s(120.0);
  EXPECT_DOUBLE_EQ(120.0, ag::forensics_interval_s());
  ag::set_forensics_interval_s(-5.0);  // negative means "no limit"
  EXPECT_DOUBLE_EQ(0.0, ag::forensics_interval_s());
  ag::set_forensics_interval_s(prev);
}

}  // namespace
