// Bitwise determinism of the parallel driver: dynamic block scheduling
// means which rank computes which (mc x nr-group) block is timing-
// dependent, but every mr x nr register tile accumulates over the full kc
// of each panel in a fixed kk order, so C must come out bit-identical on
// every run and at every thread count — including the 2-D column-group
// fallback. Block sizes are pinned because the auto-tuned defaults vary
// with the thread count, which would legitimately change the result.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "scoped_knobs.hpp"

using ag::index_t;

namespace {

ag::BlockSizes pinned_blocks() {
  ag::BlockSizes bs;
  bs.mr = 8;
  bs.nr = 6;
  bs.kc = 32;
  bs.mc = 32;
  bs.nc = 48;
  return bs;
}

// One dgemm into a fresh copy of c0; returns the raw result bytes.
std::vector<double> run_once(int threads, index_t m, index_t n, index_t k,
                             const ag::Matrix<double>& a, const ag::Matrix<double>& b,
                             const ag::Matrix<double>& c0) {
  ag::Context ctx(ag::KernelShape{8, 6}, threads);
  ctx.set_block_sizes(pinned_blocks());
  ag::Matrix<double> c(c0);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.25,
            a.data(), a.ld(), b.data(), b.ld(), 0.5, c.data(), c.ld(), ctx);
  std::vector<double> out(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    std::memcpy(out.data() + j * m, c.data() + j * c.ld(),
                static_cast<std::size_t>(m) * sizeof(double));
  return out;
}

TEST(GemmDeterminism, BitwiseIdenticalAcrossRunsAndThreadCounts) {
  // m=200 with mc=32 gives ceil(200/32)=7 row blocks: 8 threads exercises
  // the 2-D column-group fallback, 2 and 4 stay 1-D dynamic.
  const index_t m = 200, n = 96, k = 80;
  agtest::ScopedSmallMnk pack_path(0);  // keep every run on the packed path
  const auto a = ag::random_matrix(m, k, 101);
  const auto b = ag::random_matrix(k, n, 102);
  const auto c0 = ag::random_matrix(m, n, 103);

  const std::vector<double> golden = run_once(1, m, n, k, a, b, c0);
  const std::size_t bytes = golden.size() * sizeof(double);
  for (int threads : {1, 2, 4, 8}) {
    for (int rep = 0; rep < 20; ++rep) {
      const std::vector<double> got = run_once(threads, m, n, k, a, b, c0);
      ASSERT_EQ(std::memcmp(got.data(), golden.data(), bytes), 0)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(GemmDeterminism, SmallFastPathIsDeterministicToo) {
  // The fast path is serial, so this mostly guards against accidental
  // future parallelization changing the accumulation order.
  const index_t m = 24, n = 20, k = 16;
  agtest::ScopedSmallMnk fast_path(32);
  const auto a = ag::random_matrix(m, k, 201);
  const auto b = ag::random_matrix(k, n, 202);
  const auto c0 = ag::random_matrix(m, n, 203);
  const std::vector<double> golden = run_once(1, m, n, k, a, b, c0);
  for (int threads : {1, 4}) {
    for (int rep = 0; rep < 5; ++rep) {
      const std::vector<double> got = run_once(threads, m, n, k, a, b, c0);
      ASSERT_EQ(std::memcmp(got.data(), golden.data(), golden.size() * sizeof(double)), 0)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

}  // namespace
