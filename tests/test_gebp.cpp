// GEBP (layers 4-6) tests: packed block times packed panel equals the
// reference product, including ragged edges in both dimensions and all
// registered kernels.
#include <gtest/gtest.h>

#include "blas/compare.hpp"
#include "common/aligned_buffer.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "core/gebp.hpp"
#include "core/packing.hpp"

using ag::index_t;
using ag::Matrix;
using ag::Trans;

namespace {

void run_gebp_case(const std::string& kernel_name, index_t mc, index_t nc, index_t kc,
                   double alpha) {
  const ag::Microkernel& kernel = ag::microkernel_by_name(kernel_name);
  const int mr = kernel.shape.mr, nr = kernel.shape.nr;

  auto a = ag::random_matrix(mc, kc, 1);
  auto b = ag::random_matrix(kc, nc, 2);
  auto c = ag::random_matrix(mc, nc, 3);
  Matrix<double> c_ref(c);

  // Packed buffers must be SIMD aligned (the microkernel contract).
  ag::AlignedBuffer<double> pa(static_cast<std::size_t>(ag::packed_a_size(mc, kc, mr)));
  ag::AlignedBuffer<double> pb(static_cast<std::size_t>(ag::packed_b_size(kc, nc, nr)));
  ag::pack_a(Trans::NoTrans, a.data(), a.ld(), 0, 0, mc, kc, mr, pa.data());
  ag::pack_b(Trans::NoTrans, b.data(), b.ld(), 0, 0, kc, nc, nr, pb.data());

  ag::gebp(mc, nc, kc, alpha, pa.data(), pb.data(), 1.0, c.data(), c.ld(), kernel);
  ag::reference_dgemm(ag::Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, mc, nc, kc, alpha,
                      a.data(), a.ld(), b.data(), b.ld(), 1.0, c_ref.data(), c_ref.ld());

  const auto cmp =
      ag::compare_gemm_result(c.view(), c_ref.view(), kc, alpha, 1.0, 1.0, 1.0, 1.0);
  EXPECT_TRUE(cmp.ok) << kernel_name << " mc=" << mc << " nc=" << nc << " kc=" << kc
                      << " diff=" << cmp.max_diff << " bound=" << cmp.bound;
}

struct GebpCase {
  index_t mc, nc, kc;
};

class GebpAllKernels : public ::testing::TestWithParam<GebpCase> {};

TEST_P(GebpAllKernels, MatchesReference) {
  const auto [mc, nc, kc] = GetParam();
  for (const auto& k : ag::all_microkernels()) run_gebp_case(k.name, mc, nc, kc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GebpAllKernels,
    ::testing::Values(GebpCase{8, 6, 4},      // one full tile for 8x6
                      GebpCase{16, 12, 32},   // multiple full tiles
                      GebpCase{5, 3, 7},      // smaller than any tile
                      GebpCase{57, 41, 33},   // ragged both ways
                      GebpCase{64, 48, 128},  // larger, exact multiples of most
                      GebpCase{1, 1, 1}));

TEST(Gebp, AlphaVariants) {
  for (double alpha : {2.0, -0.5}) run_gebp_case("generic_8x6", 20, 14, 16, alpha);
}

TEST(Gebp, ZeroDimensionsAreNoOps) {
  const ag::Microkernel& kernel = ag::microkernel_by_name("generic_4x4");
  double c[4] = {1, 2, 3, 4};
  double dummy = 0;
  ag::gebp(0, 2, 2, 1.0, &dummy, &dummy, 1.0, c, 2, kernel);
  ag::gebp(2, 0, 2, 1.0, &dummy, &dummy, 1.0, c, 2, kernel);
  ag::gebp(2, 2, 0, 1.0, &dummy, &dummy, 1.0, c, 2, kernel);
  EXPECT_DOUBLE_EQ(c[0], 1);
  EXPECT_DOUBLE_EQ(c[3], 4);
}

TEST(Gebp, EdgeTilesDoNotTouchBeyondPanel) {
  // C embedded with poisoned guard rows; GEBP over a ragged panel must not
  // write them.
  const ag::Microkernel& kernel = ag::microkernel_by_name("generic_8x6");
  const index_t mc = 9, nc = 7, kc = 5, ldc = 12;
  Matrix<double> c(ldc, nc);
  c.fill(0.0);
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = mc; i < ldc; ++i) c(i, j) = 777.0;  // guard
  auto a = ag::random_matrix(mc, kc, 4);
  auto b = ag::random_matrix(kc, nc, 5);
  ag::AlignedBuffer<double> pa(static_cast<std::size_t>(ag::packed_a_size(mc, kc, 8)));
  ag::AlignedBuffer<double> pb(static_cast<std::size_t>(ag::packed_b_size(kc, nc, 6)));
  ag::pack_a(Trans::NoTrans, a.data(), a.ld(), 0, 0, mc, kc, 8, pa.data());
  ag::pack_b(Trans::NoTrans, b.data(), b.ld(), 0, 0, kc, nc, 6, pb.data());
  ag::gebp(mc, nc, kc, 1.0, pa.data(), pb.data(), 1.0, c.data(), ldc, kernel);
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = mc; i < ldc; ++i) EXPECT_EQ(c(i, j), 777.0) << i << "," << j;
}

}  // namespace
