// Runtime introspection layer: scheduler counters on the persistent
// batch pool (merge laws under concurrent load — the ThreadSanitizer
// target), ticket provenance through TaskSource::run_ticket, panel-cache
// wait/residency/per-class accounting, per-ticket tracer spans with
// queue-depth counter events, the Prometheus/JSON exposition of the new
// families, atomic metrics publication, and the C API snapshot mirror.
//
// Suite names deliberately contain "Batch" / "PanelCache" / "Telemetry"
// so the TSan CI job's -R filter picks them up.
#include <gtest/gtest.h>
#ifdef __linux__
#include <dirent.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "capi/armgemm_cblas.h"
#include "common/json.hpp"
#include "common/knobs.hpp"
#include "common/matrix.hpp"
#include "core/context.hpp"
#include "core/gemm_batch.hpp"
#include "core/panel_cache.hpp"
#include "obs/gemm_stats.hpp"
#include "obs/runtime_introspect.hpp"
#include "obs/telemetry.hpp"
#include "obs/tracer.hpp"
#include "scoped_knobs.hpp"
#include "threading/persistent_pool.hpp"

namespace obs = ag::obs;
using ag::Context;
using ag::index_t;
using ag::PanelCache;
using ag::PanelKey;
using ag::PersistentPool;
using ag::TaskSource;
using ag::TicketInfo;

namespace {

/// Records every ticket's provenance; optionally burns a little CPU so
/// workers have time to participate before the caller drains the queue.
class RecordingSource : public TaskSource {
 public:
  explicit RecordingSource(std::int64_t n, int spin_iters = 0)
      : infos_(static_cast<std::size_t>(n)), runs_(static_cast<std::size_t>(n)),
        spin_iters_(spin_iters) {}

  void run_ticket(std::int64_t ticket, const TicketInfo& info) override {
    volatile double sink = 0;
    for (int i = 0; i < spin_iters_; ++i) sink = sink + 1e-9;
    infos_[static_cast<std::size_t>(ticket)] = info;
    runs_[static_cast<std::size_t>(ticket)].fetch_add(1, std::memory_order_relaxed);
  }

  const TicketInfo& info(std::int64_t t) const {
    return infos_[static_cast<std::size_t>(t)];
  }
  std::uint64_t runs(std::int64_t t) const {
    return runs_[static_cast<std::size_t>(t)].load(std::memory_order_relaxed);
  }

 private:
  std::vector<TicketInfo> infos_;
  std::vector<std::atomic<std::uint64_t>> runs_;
  int spin_iters_;
};

/// Sum of tickets_run over every lane, including the "callers" lane.
std::uint64_t total_run(const obs::SchedulerStats& s) {
  std::uint64_t sum = 0;
  for (const auto& w : s.per_worker) sum += w.tickets_run;
  return sum;
}

/// One dgemm_strided_batch call: `count` entries of s^3, one shared B.
void run_batch(index_t s, std::int64_t count, int threads, int seed = 700) {
  auto a = ag::random_matrix(s, s * count, seed);
  auto b = ag::random_matrix(s, s, seed + 1);
  auto c = ag::random_matrix(s, s * count, seed + 2);
  Context ctx(ag::KernelShape{8, 6}, threads);
  ag::dgemm_strided_batch(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, s, s, s,
                          1.0, a.data(), s, s * s, b.data(), b.ld(), 0, 1.0, c.data(), s, s * s,
                          count, ctx);
}

}  // namespace

// ---- scheduler counters --------------------------------------------------

TEST(BatchIntrospect, SingleSubmissionTicketAccounting) {
  PersistentPool& pool = PersistentPool::instance();
  pool.ensure_workers(2);
  pool.reset_stats();

  const std::int64_t n = 64;
  RecordingSource src(n, 2000);
  pool.execute(src, n);

  for (std::int64_t t = 0; t < n; ++t)
    EXPECT_EQ(src.runs(t), 1u) << "ticket " << t << " did not run exactly once";

  if (!obs::stats_compiled_in) return;  // counters compiled out: nothing to check
  const obs::SchedulerStats s = pool.stats();
  EXPECT_EQ(s.submissions, 1u);
  EXPECT_EQ(s.tickets_enqueued + s.tickets_inline, static_cast<std::uint64_t>(n));
  EXPECT_EQ(total_run(s), static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.queued, 0);
  EXPECT_GE(s.workers, 2);
  for (const auto& w : s.per_worker) {
    EXPECT_EQ(w.steal_attempts, w.tickets_stolen + w.steal_failures)
        << "lane " << w.name << ": every foreign probe either steals or fails";
    EXPECT_GE(w.busy_seconds, 0.0);
    EXPECT_GE(w.idle_seconds, 0.0);
  }
}

TEST(BatchIntrospect, TicketProvenanceIsComplete) {
  PersistentPool& pool = PersistentPool::instance();
  pool.ensure_workers(3);
  pool.reset_stats();

  const std::int64_t n = 48;
  RecordingSource src(n, 5000);
  pool.execute(src, n);

  for (std::int64_t t = 0; t < n; ++t) {
    const TicketInfo& info = src.info(t);
    EXPECT_GE(info.queue_wait_seconds, 0.0);
    EXPECT_GE(info.runner_rank, -1);  // -1 = helping caller
    EXPECT_GE(info.queue_depth, 0);
    if (info.inline_overflow) {
      // Admission overflow never touched the queue.
      EXPECT_EQ(info.shard, -1);
      EXPECT_FALSE(info.stolen);
      EXPECT_EQ(info.runner_rank, -1);
    } else {
      EXPECT_GE(info.shard, 0);
      EXPECT_LT(info.shard, 8);
    }
    if (info.stolen) {
      EXPECT_GE(info.shard, 0);
    }
  }
}

TEST(BatchIntrospect, InlineOverflowAttributedToCallers) {
  agtest::ScopedQueueDepth depth(1);  // nearly everything overflows inline
  PersistentPool& pool = PersistentPool::instance();
  pool.ensure_workers(2);
  pool.reset_stats();

  const std::int64_t n = 32;
  RecordingSource src(n);
  pool.execute(src, n);

  std::uint64_t overflowed = 0;
  for (std::int64_t t = 0; t < n; ++t) {
    EXPECT_EQ(src.runs(t), 1u);
    if (src.info(t).inline_overflow) ++overflowed;
  }
  EXPECT_GT(overflowed, 0u) << "depth-1 admission should force inline overflow";

  if (!obs::stats_compiled_in) return;
  const obs::SchedulerStats s = pool.stats();
  EXPECT_EQ(s.tickets_inline, overflowed);
  EXPECT_EQ(s.tickets_enqueued + s.tickets_inline, static_cast<std::uint64_t>(n));
  EXPECT_EQ(total_run(s), static_cast<std::uint64_t>(n));
  // Inline tickets run on the submitting thread: the callers lane owns them.
  for (const auto& w : s.per_worker) {
    if (w.name == "callers") EXPECT_GE(w.tickets_inline, overflowed);
    else EXPECT_EQ(w.tickets_inline, 0u);
  }
}

// The TSan target: concurrent submitters + workers all hammering the
// relaxed counters, then the merge laws must still hold exactly (counter
// increments land before each submission's completion signal).
static void merge_laws_under_load() {
  PersistentPool& pool = PersistentPool::instance();
  pool.ensure_workers(4);
  pool.reset_stats();

  constexpr int kSubmitters = 4;
  constexpr std::int64_t kTickets = 96;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int i = 0; i < kSubmitters; ++i) {
    submitters.emplace_back([] {
      RecordingSource src(kTickets, 1000);
      PersistentPool::instance().execute(src, kTickets);
      for (std::int64_t t = 0; t < kTickets; ++t) ASSERT_EQ(src.runs(t), 1u);
    });
  }
  for (auto& th : submitters) th.join();

  if (!obs::stats_compiled_in) return;
  const obs::SchedulerStats s = PersistentPool::instance().stats();
  const std::uint64_t expect = kSubmitters * static_cast<std::uint64_t>(kTickets);
  EXPECT_EQ(s.submissions, static_cast<std::uint64_t>(kSubmitters));
  EXPECT_EQ(s.tickets_enqueued + s.tickets_inline, expect);
  EXPECT_EQ(total_run(s), expect);
  for (const auto& w : s.per_worker)
    EXPECT_EQ(w.steal_attempts, w.tickets_stolen + w.steal_failures) << "lane " << w.name;
  EXPECT_GE(s.utilization(), 0.0);
  EXPECT_LE(s.utilization(), 1.0);
  EXPECT_GE(s.steal_imbalance(), 0.0);
}

TEST(BatchIntrospect, MergeLawsUnderConcurrentLoadSpinMode) {
  agtest::ScopedSpinUs spin(50);
  merge_laws_under_load();
}

TEST(BatchIntrospect, MergeLawsUnderConcurrentLoadBlockMode) {
  agtest::ScopedSpinUs spin(0);  // immediate-block path: blocks counted
  merge_laws_under_load();
}

TEST(BatchIntrospect, ResetStatsZeroesEveryLane) {
  PersistentPool& pool = PersistentPool::instance();
  pool.ensure_workers(2);
  RecordingSource src(16);
  pool.execute(src, 16);
  pool.reset_stats();

  const obs::SchedulerStats s = pool.stats();
  EXPECT_EQ(s.submissions, 0u);
  EXPECT_EQ(s.tickets_enqueued, 0u);
  EXPECT_EQ(s.tickets_inline, 0u);
  EXPECT_EQ(total_run(s), 0u);
  for (const auto& w : s.per_worker) {
    EXPECT_EQ(w.tickets_stolen, 0u) << w.name;
    EXPECT_EQ(w.steal_attempts, 0u) << w.name;
    EXPECT_EQ(w.blocks, 0u) << w.name;
  }
}

TEST(BatchIntrospect, SchedulerSourceRegisteredProcessWide) {
  PersistentPool::instance().ensure_workers(1);
  ASSERT_TRUE(obs::scheduler_stats_available());
  PersistentPool::instance().reset_stats();
  RecordingSource src(8);
  PersistentPool::instance().execute(src, 8);
  const obs::SchedulerStats s = obs::scheduler_stats();
  if (obs::stats_compiled_in) {
    EXPECT_EQ(total_run(s), 8u);
  } else {
    // -DARMGEMM_STATS=OFF: the snapshot exists but every counter is zero.
    EXPECT_EQ(total_run(s), 0u);
    EXPECT_EQ(s.submissions, 0u);
  }
}

#ifdef __linux__
TEST(BatchIntrospect, WorkerThreadsAreNamedByRank) {
  PersistentPool::instance().ensure_workers(2);
  // /proc/self/task/<tid>/comm holds each thread's name (15-char cap).
  // ensure_workers returns once the threads are spawned; each worker
  // names itself as its first act, so poll briefly for the names to land.
  std::set<std::string> names;
  for (int attempt = 0; attempt < 200; ++attempt) {
    names.clear();
    DIR* task = opendir("/proc/self/task");
    ASSERT_NE(task, nullptr);
    while (dirent* e = readdir(task)) {
      if (e->d_name[0] == '.') continue;
      std::ifstream comm(std::string("/proc/self/task/") + e->d_name + "/comm");
      std::string name;
      if (std::getline(comm, name)) names.insert(name);
    }
    closedir(task);
    if (names.count("armgemm-pw0") && names.count("armgemm-pw1")) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(names.count("armgemm-pw0"))
      << "persistent-pool worker 0 should be named armgemm-pw0";
  EXPECT_TRUE(names.count("armgemm-pw1"));
}
#endif

// ---- tracer: per-ticket spans + queue-depth counters ---------------------

TEST(BatchIntrospect, TracerRecordsTicketSpansAcrossLanes) {
  if (!obs::stats_compiled_in)
    GTEST_SKIP() << "-DARMGEMM_STATS=OFF: Context::stats() is compiled to nullptr, "
                    "so no tracer ever attaches (the zero-cost contract)";
  obs::Tracer tracer;
  obs::GemmStats stats;
  stats.set_tracer(&tracer);

  // Heavy enough entries, twice over, that the persistent-pool workers
  // reliably claim tickets alongside the helping caller.
  const index_t s = 96;
  const std::int64_t count = 32;
  auto a = ag::random_matrix(s, s * count, 710);
  auto b = ag::random_matrix(s, s, 711);
  auto c = ag::random_matrix(s, s * count, 712);
  Context ctx(ag::KernelShape{8, 6}, 4);
  ctx.set_stats(&stats);
  for (int call = 0; call < 2; ++call) {
    ag::dgemm_strided_batch(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, s, s,
                            s, 1.0, a.data(), s, s * s, b.data(), b.ld(), 0, 1.0, c.data(), s,
                            s * s, count, ctx);
  }
  ctx.set_stats(nullptr);

  EXPECT_GT(tracer.counter_event_count(), 0u) << "no queue-depth counter events";
  const std::string json = tracer.to_json();
  for (const char* needle : {"\"ticket/", "queue_depth", "\"ph\":\"C\"", "wait_us",
                             "cache_hits", "cache_misses"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "trace missing: " << needle;
  }

  // The trace is valid JSON (a bare Chrome-trace event array); every lane
  // that ran a ticket is named for its scheduler role, and every span
  // carries the scheduling extras.
  std::string err;
  const auto doc = ag::JsonValue::parse(json, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_TRUE(doc.is_array());
  std::map<int, std::string> lane_names;
  for (const auto& ev : doc.items()) {
    if (ev["ph"].as_string() == "M" && ev["name"].as_string() == "thread_name")
      lane_names[static_cast<int>(ev["tid"].as_number())] = ev["args"]["name"].as_string();
  }
  std::uint64_t ticket_spans = 0;
  std::set<int> lanes;
  for (const auto& ev : doc.items()) {
    const std::string name = ev["name"].as_string();
    if (name.rfind("ticket/", 0) != 0) continue;
    ++ticket_spans;
    const int lane = static_cast<int>(ev["tid"].as_number());
    lanes.insert(lane);
    // Lane 0 is the submitting caller; lane r+1 is pool worker r.
    const std::string expect_name =
        lane == 0 ? "caller" : "armgemm-pw" + std::to_string(lane - 1);
    EXPECT_EQ(lane_names[lane], expect_name);
    EXPECT_EQ(ev["args"]["ticket"].kind(), ag::JsonValue::Kind::kNumber);
    EXPECT_EQ(ev["args"]["stolen"].kind(), ag::JsonValue::Kind::kNumber);
  }
  // At least one span per entry per call (blocked entries may shard into
  // several tickets), spread over more than one scheduler lane.
  EXPECT_GE(ticket_spans, static_cast<std::uint64_t>(2 * count));
  EXPECT_GE(lanes.size(), 2u) << "spans should land on more than one lane at 4 threads";
}

// ---- panel cache ---------------------------------------------------------

namespace {
PanelKey cache_key(const double* b, index_t jj, std::uint64_t epoch) {
  PanelKey key;
  key.b = b;
  key.ldb = 64;
  key.trans = ag::Trans::NoTrans;
  key.kk = 0;
  key.jj = jj;
  key.kc = 32;
  key.nc = 48;
  key.nr = 6;
  key.epoch = epoch;
  return key;
}
constexpr index_t kCacheElems = 32 * 48;
}  // namespace

TEST(PanelCacheIntrospect, WaitStallAccountingUnderConcurrentPack) {
  agtest::ScopedPanelCacheMb cap(8);
  PanelCache& cache = PanelCache::instance();
  const std::uint64_t epoch = cache.begin_epoch();
  cache.reset_stats();
  const double* b = reinterpret_cast<const double*>(0x9000);

  std::atomic<bool> packer_entered{false};
  std::thread first([&] {
    cache.get_or_pack(cache_key(b, 0, epoch), kCacheElems, [&](double* dst) {
      packer_entered.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      for (index_t i = 0; i < kCacheElems; ++i) dst[i] = 1.0;
    });
  });
  while (!packer_entered.load(std::memory_order_acquire)) std::this_thread::yield();
  // Second claimant arrives mid-pack: must wait, and the wait is counted.
  PanelCache::Outcome outcome = PanelCache::Outcome::kMiss;
  auto p = cache.get_or_pack(
      cache_key(b, 0, epoch), kCacheElems, [](double*) { FAIL() << "second pack"; }, -1,
      &outcome);
  first.join();

  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->data()[0], 1.0);
  EXPECT_EQ(outcome, PanelCache::Outcome::kHit);
  const PanelCache::Stats s = cache.stats();
  EXPECT_GE(s.wait_stalls, 1u);
  EXPECT_GT(s.wait_seconds, 0.0);
}

TEST(PanelCacheIntrospect, ResidencyAndPeakBytesTrackInsertions) {
  agtest::ScopedPanelCacheMb cap(8);
  PanelCache& cache = PanelCache::instance();
  const std::uint64_t epoch = cache.begin_epoch();
  cache.reset_stats();
  const double* b = reinterpret_cast<const double*>(0xA000);

  const std::size_t panel_bytes = kCacheElems * sizeof(double);
  for (int i = 0; i < 3; ++i)
    cache.get_or_pack(cache_key(b, 48 * i, epoch), kCacheElems,
                      [](double* dst) { dst[0] = 1.0; });

  PanelCache::Stats s = cache.stats();
  EXPECT_EQ(s.resident_panels, 3u);
  EXPECT_EQ(s.resident_bytes, 3 * panel_bytes);
  EXPECT_GE(s.peak_bytes, s.resident_bytes);

  // New epoch drops the panels; peak survives as a high-water mark
  // relative to the post-reset baseline.
  cache.begin_epoch();
  s = cache.stats();
  EXPECT_EQ(s.resident_panels, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_GE(s.peak_bytes, 3 * panel_bytes);
}

TEST(PanelCacheIntrospect, PerClassAttribution) {
  agtest::ScopedPanelCacheMb cap(8);
  PanelCache& cache = PanelCache::instance();
  const std::uint64_t epoch = cache.begin_epoch();
  cache.reset_stats();
  const double* b = reinterpret_cast<const double*>(0xB000);

  const int cls = 7;
  cache.get_or_pack(cache_key(b, 0, epoch), kCacheElems, [](double* d) { d[0] = 1; }, cls);
  cache.get_or_pack(cache_key(b, 0, epoch), kCacheElems, [](double* d) { d[0] = 2; }, cls);
  cache.get_or_pack(cache_key(b, 48, epoch), kCacheElems, [](double* d) { d[0] = 3; });  // untagged

  const PanelCache::Stats s = cache.stats();
  bool found_cls = false, found_untagged = false;
  for (const auto& c : s.by_class) {
    if (c.shape_class == cls) {
      found_cls = true;
      EXPECT_EQ(c.hits, 1u);
      EXPECT_EQ(c.misses, 1u);
    }
    if (c.shape_class == -1) {
      found_untagged = true;
      EXPECT_EQ(c.misses, 1u);
    }
  }
  EXPECT_TRUE(found_cls);
  EXPECT_TRUE(found_untagged);
}

TEST(PanelCacheIntrospect, EndToEndBatchHitRate) {
  agtest::ScopedPanelCacheMb cap(64);
  PanelCache& cache = PanelCache::instance();
  ASSERT_TRUE(obs::panel_cache_stats_available());
  // Force entries down the blocked path so the cache actually sees them.
  agtest::ScopedSmallMnk small(0);
  cache.begin_epoch();
  cache.reset_stats();

  run_batch(64, 32, 4);

  const obs::PanelCacheStats s = obs::panel_cache_stats();
  EXPECT_GT(s.hits, 0u) << "32 entries sharing one B must reuse packed panels";
  EXPECT_GT(s.hit_rate(), 0.5);
  bool batch_class = false;
  for (const auto& c : s.by_class)
    if (c.shape_class >= 0) batch_class = true;
  EXPECT_TRUE(batch_class) << "batch driver should tag panel lookups with its shape class";
}

// ---- exposition: Prometheus, JSON, atomic publication, C API -------------

class TelemetryIntrospect : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::stats_compiled_in) GTEST_SKIP() << "built with -DARMGEMM_STATS=OFF";
    saved_metrics_path_ = ag::metrics_path();
    ag::set_metrics_path("");
    obs::telemetry_set_model(10.0, ag::model::CostParams{1e-10, 1e-9, 0.125}, 1.0);
    obs::telemetry_enable();
    obs::telemetry_reset();
    PersistentPool::instance().reset_stats();
    PanelCache::instance().reset_stats();
  }

  void TearDown() override {
    if (!obs::stats_compiled_in) return;
    obs::telemetry_disable();
    ag::set_metrics_path(saved_metrics_path_);
    obs::telemetry_reset();
  }

  std::string saved_metrics_path_;
};

TEST_F(TelemetryIntrospect, PrometheusExposesSchedulerAndCacheFamilies) {
  run_batch(48, 16, 4);
  const std::string prom = obs::telemetry_render_prometheus();

  for (const char* needle :
       {"armgemm_scheduler_workers", "armgemm_scheduler_submissions_total",
        "armgemm_scheduler_tickets_enqueued_total", "armgemm_scheduler_utilization",
        "armgemm_scheduler_steal_imbalance", "armgemm_worker_tickets_total{worker=",
        "armgemm_worker_busy_seconds_total{worker=\"armgemm-pw0\"}",
        "armgemm_worker_tickets_total{worker=\"callers\"}", "armgemm_panel_cache_hits_total",
        "armgemm_panel_cache_resident_bytes", "armgemm_panel_cache_hit_rate",
        "armgemm_panel_cache_class_hits_total{class="}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << "missing: " << needle;
  }

  // Round-trip parse of the full text format: every sample line is
  // "name{labels} value" with a HELP and TYPE declared for its family
  // (the contract tools/armgemm-top --lint enforces in CI).
  std::set<std::string> declared;
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line);
      std::string hash, kw, fam;
      hs >> hash >> kw >> fam;
      EXPECT_TRUE(kw == "HELP" || kw == "TYPE") << line;
      declared.insert(fam);
      continue;
    }
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    std::string family = line.substr(0, name_end);
    // Histogram sample suffixes belong to the base family declaration.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          declared.count(family.substr(0, family.size() - s.size()))) {
        family = family.substr(0, family.size() - s.size());
        break;
      }
    }
    EXPECT_TRUE(declared.count(family)) << "undeclared family: " << family;
    const double value = std::atof(line.c_str() + line.find_last_of(' '));
    EXPECT_EQ(value, value) << "NaN sample: " << line;  // NaN != NaN
  }
}

TEST_F(TelemetryIntrospect, JsonExposesSchedulerAndPanelCacheObjects) {
  run_batch(48, 16, 2);

  std::string err;
  const auto doc = ag::JsonValue::parse(obs::telemetry_render_json(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(doc["schema"].as_string(), "armgemm-telemetry/1");

  const auto& sched = doc["scheduler"];
  ASSERT_TRUE(sched.is_object()) << "scheduler section absent";
  EXPECT_GE(sched["workers"].as_number(), 1.0);
  EXPECT_GE(sched["submissions"].as_number(), 1.0);
  ASSERT_TRUE(sched["per_worker"].is_array());
  ASSERT_GE(sched["per_worker"].size(), 1u);
  bool saw_callers = false;
  for (const auto& w : sched["per_worker"].items()) {
    EXPECT_FALSE(w["name"].as_string().empty());
    EXPECT_GE(w["tickets_run"].as_number(), 0.0);
    EXPECT_GE(w["busy_seconds"].as_number(), 0.0);
    if (w["name"].as_string() == "callers") saw_callers = true;
  }
  EXPECT_TRUE(saw_callers);

  const auto& cache = doc["panel_cache"];
  ASSERT_TRUE(cache.is_object()) << "panel_cache section absent";
  EXPECT_GE(cache["hits"].as_number() + cache["misses"].as_number(), 1.0);
  ASSERT_TRUE(cache["by_class"].is_array());

  // Batch flight records carry the new queue-wait / cache-hit fields.
  bool saw_batch_record = false;
  for (const auto& rec : doc["flight"].items()) {
    if (rec["schedule"].as_string() != "batch") continue;
    saw_batch_record = true;
    EXPECT_GE(rec["queue_wait_seconds"].as_number(), 0.0);
    EXPECT_TRUE(rec.has("cache_hits"));
    EXPECT_TRUE(rec.has("cache_misses"));
  }
  EXPECT_TRUE(saw_batch_record);
}

TEST_F(TelemetryIntrospect, WriteMetricsPublishesAtomically) {
  run_batch(32, 8, 2);
  const std::string path = "introspect_metrics.prom";
  ASSERT_EQ(obs::telemetry_write_metrics(path), 0);

  // The staging files must be gone: a scraper that lists the directory
  // never sees a torn half-written exposition.
  for (const std::string& tmp : {path + ".tmp", path + ".json.tmp"}) {
    std::ifstream f(tmp);
    EXPECT_FALSE(f.good()) << "staging file left behind: " << tmp;
  }
  // Both artifacts are complete and parse.
  std::ifstream prom(path);
  ASSERT_TRUE(prom.good());
  std::stringstream pbuf;
  pbuf << prom.rdbuf();
  EXPECT_NE(pbuf.str().find("armgemm_scheduler_workers"), std::string::npos);
  std::ifstream js(path + ".json");
  ASSERT_TRUE(js.good());
  std::stringstream jbuf;
  jbuf << js.rdbuf();
  std::string err;
  const auto doc = ag::JsonValue::parse(jbuf.str(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_TRUE(doc["scheduler"].is_object());

  // Republishing over an existing file goes through the same tmp+rename.
  ASSERT_EQ(obs::telemetry_write_metrics(path), 0);
  std::ifstream again(path);
  EXPECT_TRUE(again.good());

  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
}

TEST_F(TelemetryIntrospect, CapiSnapshotGetters) {
  run_batch(48, 16, 2);

  armgemm_scheduler_stats sched;
  ASSERT_EQ(armgemm_scheduler_stats_get(&sched), 1);
  EXPECT_GE(sched.workers, 1);
  EXPECT_GE(sched.submissions, 1ull);
  EXPECT_EQ(sched.tickets_run, sched.tickets_enqueued + sched.tickets_inline);
  EXPECT_EQ(sched.steal_attempts, sched.tickets_stolen + sched.steal_failures);
  EXPECT_GE(sched.utilization, 0.0);
  EXPECT_LE(sched.utilization, 1.0);
  EXPECT_GE(sched.busy_seconds, 0.0);

  armgemm_panel_cache_stats cache;
  ASSERT_EQ(armgemm_panel_cache_stats_get(&cache), 1);
  EXPECT_GE(cache.epochs, 1ull);
  EXPECT_GE(cache.hit_rate, 0.0);
  EXPECT_LE(cache.hit_rate, 1.0);
  EXPECT_GE(cache.peak_bytes, cache.resident_bytes);
}
