// CBLAS C API edge cases: degenerate sizes, the beta == 0 "overwrite, do
// not read" contract with NaN/Inf garbage in C, and RowMajor/transpose
// combinations cross-checked against the equivalent ColMajor call.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "capi/armgemm_cblas.h"
#include "common/rng.hpp"

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> random_buffer(std::size_t count, std::uint64_t seed) {
  ag::Xoshiro256 rng(seed);
  std::vector<double> v(count);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(CapiEdge, DegenerateSizesLeaveCUntouchedOrScaled) {
  // m == 0 or n == 0: no element of C is referenced at all.
  std::vector<double> a(4, kNaN), b(4, kNaN);
  std::vector<double> c = {1.0, 2.0, 3.0, 4.0};
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, 0, 2, 1, 1.0, a.data(), 1, b.data(),
              1, 2.0, c.data(), 1);
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, 2, 0, 1, 1.0, a.data(), 2, b.data(),
              1, 2.0, c.data(), 2);
  EXPECT_EQ(c, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));

  // k == 0: C := beta * C, with A and B never referenced.
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, 2, 2, 0, 1.0, a.data(), 2, b.data(),
              1, 0.5, c.data(), 2);
  EXPECT_EQ(c, (std::vector<double>{0.5, 1.0, 1.5, 2.0}));

  // alpha == 0 with k > 0: A and B may hold anything, C := beta * C.
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, 2, 2, 1, 0.0, a.data(), 2, b.data(),
              1, 2.0, c.data(), 2);
  EXPECT_EQ(c, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(CapiEdge, BetaZeroOverwritesNaNAndInfInC) {
  const int m = 17, n = 13, k = 9;
  auto a = random_buffer(static_cast<std::size_t>(m) * k, 1);
  auto b = random_buffer(static_cast<std::size_t>(k) * n, 2);

  // Expected value from a C initialized to zero with beta = 1.
  std::vector<double> want(static_cast<std::size_t>(m) * n, 0.0);
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0, a.data(), m, b.data(),
              k, 1.0, want.data(), m);

  // beta = 0 must fully overwrite a C poisoned with NaN and Inf — if any
  // path reads C first (0 * NaN = NaN), the result is poisoned.
  std::vector<double> c(static_cast<std::size_t>(m) * n);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = (i % 2) ? kNaN : kInf;
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0, a.data(), m, b.data(),
              k, 0.0, c.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_TRUE(std::isfinite(c[i])) << "C[" << i << "] = " << c[i];
    ASSERT_DOUBLE_EQ(c[i], want[i]) << i;
  }

  // Same contract for alpha == 0 && beta == 0: C := 0 exactly.
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = (i % 2) ? kNaN : kInf;
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, k, 0.0, a.data(), m, b.data(),
              k, 0.0, c.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], 0.0) << i;

  // And for k == 0 && beta == 0.
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = (i % 2) ? kNaN : kInf;
  cblas_dgemm(CblasColMajor, CblasNoTrans, CblasNoTrans, m, n, 0, 1.0, a.data(), m, b.data(),
              k > 0 ? k : 1, 0.0, c.data(), m);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], 0.0) << i;
}

// Every RowMajor transpose combination must agree with the ColMajor call
// on explicitly transposed data. Row-major X (r x c, ld = c) holds the
// same bytes as column-major X^T (c x r, ld = c), so we compute in both
// conventions and compare C element by element.
class CapiRowMajorCross : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CapiRowMajorCross, MatchesColMajor) {
  const bool trans_a = GetParam().first != 0;
  const bool trans_b = GetParam().second != 0;
  const int m = 19, n = 11, k = 7;
  const double alpha = 1.25, beta = -0.5;

  const int a_rows = trans_a ? k : m, a_cols = trans_a ? m : k;
  const int b_rows = trans_b ? n : k, b_cols = trans_b ? k : n;

  // Row-major operands, ld == logical column count.
  auto a = random_buffer(static_cast<std::size_t>(a_rows) * a_cols, 11);
  auto b = random_buffer(static_cast<std::size_t>(b_rows) * b_cols, 12);
  auto c0 = random_buffer(static_cast<std::size_t>(m) * n, 13);

  std::vector<double> c_row = c0;
  cblas_dgemm(CblasRowMajor, trans_a ? CblasTrans : CblasNoTrans,
              trans_b ? CblasTrans : CblasNoTrans, m, n, k, alpha, a.data(), a_cols, b.data(),
              b_cols, beta, c_row.data(), n);

  // The same buffers read as column-major are the transposed matrices, so
  // the ColMajor call computes C^T = alpha op(B)^T op(A)^T + beta C^T.
  std::vector<double> c_col = c0;  // row-major C == col-major C^T (n x m, ld n)
  cblas_dgemm(CblasColMajor, trans_b ? CblasTrans : CblasNoTrans,
              trans_a ? CblasTrans : CblasNoTrans, n, m, k, alpha, b.data(), b_cols, a.data(),
              a_cols, beta, c_col.data(), n);

  for (std::size_t i = 0; i < c_row.size(); ++i)
    ASSERT_DOUBLE_EQ(c_row[i], c_col[i]) << "flat index " << i;

  // ConjTrans must behave exactly like Trans for the real-valued routine.
  if (trans_a || trans_b) {
    std::vector<double> c_conj = c0;
    cblas_dgemm(CblasRowMajor, trans_a ? CblasConjTrans : CblasNoTrans,
                trans_b ? CblasConjTrans : CblasNoTrans, m, n, k, alpha, a.data(), a_cols,
                b.data(), b_cols, beta, c_conj.data(), n);
    EXPECT_EQ(c_conj, c_row);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransCombos, CapiRowMajorCross,
                         ::testing::Values(std::pair<int, int>{0, 0}, std::pair<int, int>{0, 1},
                                           std::pair<int, int>{1, 0},
                                           std::pair<int, int>{1, 1}));

TEST(CapiEdge, RowMajorBetaZeroWithPoisonedC) {
  const int m = 9, n = 15, k = 5;
  auto a = random_buffer(static_cast<std::size_t>(m) * k, 21);
  auto b = random_buffer(static_cast<std::size_t>(k) * n, 22);

  std::vector<double> want(static_cast<std::size_t>(m) * n, 0.0);
  cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0, a.data(), k, b.data(),
              n, 1.0, want.data(), n);

  std::vector<double> c(static_cast<std::size_t>(m) * n, kNaN);
  cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans, m, n, k, 1.0, a.data(), k, b.data(),
              n, 0.0, c.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_DOUBLE_EQ(c[i], want[i]) << i;
}

TEST(CapiEdge, SetNumThreadsIgnoresInvalidValues) {
  const int before = armgemm_get_num_threads();
  armgemm_set_num_threads(0);
  EXPECT_EQ(armgemm_get_num_threads(), before);
  armgemm_set_num_threads(-3);
  EXPECT_EQ(armgemm_get_num_threads(), before);
  armgemm_set_num_threads(2);
  EXPECT_EQ(armgemm_get_num_threads(), 2);
  armgemm_set_num_threads(before);
  EXPECT_EQ(armgemm_get_num_threads(), before);
}

}  // namespace
