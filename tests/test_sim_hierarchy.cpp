// Multi-core hierarchy routing: L1 -> shared-L2 -> L3 -> memory, counter
// semantics, prefetch levels, and cache sharing between module partners.
#include <gtest/gtest.h>

#include "model/machine.hpp"
#include "sim/hierarchy.hpp"

using ag::sim::AccessType;
using ag::sim::Hierarchy;
using ag::sim::Served;

TEST(HierarchyTest, ColdAccessServedByMemoryThenCaches) {
  Hierarchy h(ag::model::xgene());
  EXPECT_EQ(h.access(0, 0x1000, 8, AccessType::Read), Served::Memory);
  EXPECT_EQ(h.access(0, 0x1000, 8, AccessType::Read), Served::L1);
  EXPECT_EQ(h.memory_reads(), 1u);
}

TEST(HierarchyTest, ModulePartnersShareL2) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x2000, 8, AccessType::Read);  // core 0 warms L2 of module 0
  EXPECT_EQ(h.access(1, 0x2000, 8, AccessType::Read), Served::L2);  // partner
  EXPECT_EQ(h.access(2, 0x2000, 8, AccessType::Read), Served::L3);  // other module
}

TEST(HierarchyTest, AllCoresShareL3) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x3000, 8, AccessType::Read);
  for (int core = 2; core < 8; core += 2)
    EXPECT_EQ(h.access(core, 0x3000, 8, AccessType::Read), Served::L3) << core;
}

TEST(HierarchyTest, MultiLineAccessSplits) {
  Hierarchy h(ag::model::xgene());
  // 128 bytes spanning 2 lines: two memory reads on cold access.
  h.access(0, 0x4000, 128, AccessType::Read);
  EXPECT_EQ(h.memory_reads(), 2u);
  // Unaligned 64-byte access spanning 2 lines.
  h.access(0, 0x5020, 64, AccessType::Read);
  EXPECT_EQ(h.memory_reads(), 4u);
}

TEST(HierarchyTest, LoadInstructionCounting) {
  Hierarchy h(ag::model::xgene());
  // One 64-byte request representing 4 x 128-bit ldr instructions.
  h.access(0, 0x6000, 64, AccessType::Read, 4);
  EXPECT_EQ(h.counters(0).l1_dcache_loads, 4u);
  EXPECT_EQ(h.counters(0).l1_dcache_load_misses, 1u);  // one line missed
  h.access(0, 0x6000, 64, AccessType::Read, 4);
  EXPECT_EQ(h.counters(0).l1_dcache_loads, 8u);
  EXPECT_EQ(h.counters(0).l1_dcache_load_misses, 1u);
}

TEST(HierarchyTest, StoresCountedSeparately) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x7000, 64, AccessType::Write, 4);
  EXPECT_EQ(h.counters(0).l1_dcache_stores, 4u);
  EXPECT_EQ(h.counters(0).l1_dcache_loads, 0u);
}

TEST(HierarchyTest, PrefetchL1FillsWithoutCounting) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x8000, 64, AccessType::PrefetchL1, 0);
  EXPECT_EQ(h.counters(0).l1_dcache_loads, 0u);
  EXPECT_EQ(h.access(0, 0x8000, 8, AccessType::Read), Served::L1);
}

TEST(HierarchyTest, PrefetchL2FillsL2NotL1) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x9000, 64, AccessType::PrefetchL2, 0);
  EXPECT_FALSE(h.l1(0).contains(0x9000));
  EXPECT_TRUE(h.l2_of_core(0).contains(0x9000));
  EXPECT_EQ(h.access(0, 0x9000, 8, AccessType::Read), Served::L2);
}

TEST(HierarchyTest, DirtyL1EvictionWritesBackToL2) {
  ag::model::MachineConfig m = ag::model::xgene();
  m.l1d = {512, 2, 64};  // tiny L1 to force evictions quickly
  Hierarchy h(m);
  h.access(0, 0x0000, 8, AccessType::Write);
  // Stream two more lines into set 0 (set stride = 4 * 64 = 256).
  h.access(0, 0x0100, 8, AccessType::Read);
  h.access(0, 0x0200, 8, AccessType::Read);  // evicts dirty 0x0000
  EXPECT_FALSE(h.l1(0).contains(0x0000));
  EXPECT_TRUE(h.l2_of_core(0).contains(0x0000));  // written back, still dirty there
}

TEST(HierarchyTest, ConservationHitsPlusMisses) {
  Hierarchy h(ag::model::xgene());
  for (int i = 0; i < 100; ++i)
    h.access(i % 8, 0x10000 + static_cast<ag::sim::addr_t>(i % 16) * 64, 8, AccessType::Read);
  std::uint64_t l1_accesses = 0;
  for (int c = 0; c < 8; ++c) l1_accesses += h.l1(c).stats().accesses();
  EXPECT_EQ(l1_accesses, 100u);
}

TEST(HierarchyTest, ResetAndClearStats) {
  Hierarchy h(ag::model::xgene());
  h.access(0, 0x1000, 8, AccessType::Read);
  h.clear_stats();
  EXPECT_EQ(h.total_counters().l1_dcache_loads, 0u);
  EXPECT_TRUE(h.l1(0).contains(0x1000));  // contents survive clear_stats
  h.reset();
  EXPECT_FALSE(h.l1(0).contains(0x1000));
}
