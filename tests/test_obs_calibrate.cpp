// Calibration sanity: each micro-probe returns a physically plausible
// value on whatever silicon runs the tests, the derived CostParams feed
// Eq. (6) unchanged, and the JSON report is machine-readable. Budgets are
// shrunk far below the defaults so the whole file runs in well under a
// second; the assertions are correspondingly loose (orders of magnitude,
// not digits).
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "obs/calibrate.hpp"
#include "obs/pmu.hpp"

namespace {

ag::obs::CalibrationOptions fast_options() {
  ag::obs::CalibrationOptions opts;
  opts.seconds_per_probe = 0.004;
  opts.memory_bytes = 8ll << 20;  // beyond L2 on anything relevant, but quick
  return opts;
}

TEST(ObsCalibrate, ThroughputProbeIsPlausible) {
  const double mu = ag::obs::measure_fma_throughput(fast_options());
  ASSERT_GT(mu, 0.0);
  // 1e-9/mu Gflops: anything from an emulator (0.01) to a vector server
  // core (500) passes; zero, negative or wildly absurd values do not.
  const double gflops = 1e-9 / mu;
  EXPECT_GT(gflops, 0.01);
  EXPECT_LT(gflops, 10000.0);
}

TEST(ObsCalibrate, LatencyChainIsNoFasterThanThroughput) {
  const auto opts = fast_options();
  const double mu = ag::obs::measure_fma_throughput(opts);
  const double lat = ag::obs::measure_fma_latency(opts);
  ASSERT_GT(lat, 0.0);
  // One dependent chain cannot beat many independent chains; allow 2x
  // noise margin rather than asserting the clean inequality.
  EXPECT_GT(lat, 0.5 * mu);
}

TEST(ObsCalibrate, MemoryProbeCostsMoreThanAFlop) {
  const auto opts = fast_options();
  const double pi = ag::obs::measure_memory_word_cost(opts);
  const double mu = ag::obs::measure_fma_throughput(opts);
  ASSERT_GT(pi, 0.0);
  // A dependent out-of-cache load is never cheaper than a pipelined FMA.
  EXPECT_GT(pi, mu);
}

TEST(ObsCalibrate, OverlapPsiIsAFraction) {
  double gamma = 0;
  const double psi = ag::obs::measure_overlap_psi(fast_options(), &gamma);
  EXPECT_GE(psi, 0.0);
  EXPECT_LE(psi, 1.0 + 1e-9);
  EXPECT_GT(gamma, 0.0);
}

TEST(ObsCalibrate, FullCalibrationIsConsistent) {
  const ag::obs::CalibrationResult cal = ag::obs::calibrate(fast_options());
  ASSERT_GT(cal.mu, 0.0);
  EXPECT_NEAR(cal.peak_gflops, 1e-9 / cal.mu, 1e-9 / cal.mu * 1e-6);
  EXPECT_GT(cal.pi, 0.0);
  EXPECT_GE(cal.psi_c, 0.0);
  EXPECT_GE(cal.measured_psi, 0.0);
  EXPECT_LE(cal.measured_psi, 1.0 + 1e-9);
  EXPECT_GT(cal.gamma_probe, 0.0);
  EXPECT_GE(cal.cycles_per_fma, 0.0);
  EXPECT_EQ(cal.used_hardware_counters, ag::obs::PmuGroup::hardware_available());

  const ag::model::CostParams p = cal.cost_params(0.25);
  EXPECT_DOUBLE_EQ(p.mu, cal.mu);
  EXPECT_DOUBLE_EQ(p.pi, cal.pi);
  EXPECT_DOUBLE_EQ(p.kappa, 0.25);
}

TEST(ObsCalibrate, ForcedFallbackStillCalibrates) {
  const bool saved = ag::obs::pmu_forced_fallback();
  ag::obs::pmu_set_forced_fallback(true);
  const ag::obs::CalibrationResult cal = ag::obs::calibrate(fast_options());
  ag::obs::pmu_set_forced_fallback(saved);
  EXPECT_FALSE(cal.used_hardware_counters);
  EXPECT_GT(cal.mu, 0.0);
  EXPECT_GT(cal.pi, 0.0);
}

TEST(ObsCalibrate, ToJsonParsesWithExpectedKeys) {
  const ag::obs::CalibrationResult cal = ag::obs::calibrate(fast_options());
  std::string err;
  const ag::JsonValue doc = ag::JsonValue::parse(cal.to_json(), &err);
  ASSERT_TRUE(doc.is_object()) << err;
  for (const char* key : {"mu", "fma_latency_s", "pi", "psi_c", "measured_psi",
                          "gamma_probe", "peak_gflops", "cycles_per_fma"})
    EXPECT_TRUE(doc.has(key)) << key;
  EXPECT_TRUE(doc.has("used_hardware_counters"));
  EXPECT_GT(doc["peak_gflops"].as_number(), 0.0);
  EXPECT_NEAR(doc["mu"].as_number(), cal.mu, cal.mu * 1e-3);
}

}  // namespace
