// Property-based dgemm tests: algebraic identities that must hold for any
// correct GEMM — linearity in alpha, additivity over K-splits (blocking
// invariance), transpose duality, identity-matrix behaviour, and
// randomized shape fuzzing against the oracle.
#include <gtest/gtest.h>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"

using ag::Context;
using ag::index_t;
using ag::Layout;
using ag::Matrix;
using ag::Trans;

namespace {

Matrix<double> multiply(const Context& ctx, const Matrix<double>& a, const Matrix<double>& b,
                        double alpha = 1.0) {
  Matrix<double> c(a.rows(), b.cols());
  c.fill(0.0);
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, a.rows(), b.cols(), a.cols(),
            alpha, a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(), ctx);
  return c;
}

TEST(GemmProperties, IdentityLeavesMatrixUnchanged) {
  Context ctx;
  const index_t n = 50;
  Matrix<double> eye(n, n);
  eye.fill(0.0);
  for (index_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  auto b = ag::random_matrix(n, n, 9);
  auto c = multiply(ctx, eye, b);
  EXPECT_LT(ag::max_abs_diff(c.view(), b.view()), 1e-12);
}

TEST(GemmProperties, LinearInAlpha) {
  Context ctx;
  auto a = ag::random_matrix(40, 30, 21);
  auto b = ag::random_matrix(30, 35, 22);
  auto c1 = multiply(ctx, a, b, 3.0);
  auto c2 = multiply(ctx, a, b, 1.0);
  for (index_t j = 0; j < c1.cols(); ++j)
    for (index_t i = 0; i < c1.rows(); ++i)
      EXPECT_NEAR(c1(i, j), 3.0 * c2(i, j), 1e-10) << i << "," << j;
}

TEST(GemmProperties, AdditiveOverKSplit) {
  // A*B == A1*B1 + A2*B2 when A=[A1 A2], B=[B1; B2]: the identity the
  // layer-2 rank-kc decomposition relies on.
  Context ctx;
  const index_t m = 45, n = 35, k = 60, k1 = 23;
  auto a = ag::random_matrix(m, k, 31);
  auto b = ag::random_matrix(k, n, 32);
  auto full = multiply(ctx, a, b);

  Matrix<double> acc(m, n);
  acc.fill(0.0);
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k1, 1.0, a.data(), a.ld(),
            b.data(), b.ld(), 0.0, acc.data(), acc.ld(), ctx);
  ag::dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k - k1, 1.0,
            a.data() + k1 * a.ld(), a.ld(), b.data() + k1, b.ld(), 1.0, acc.data(), acc.ld(),
            ctx);
  EXPECT_LT(ag::max_abs_diff(full.view(), acc.view()), 1e-10);
}

TEST(GemmProperties, TransposeDuality) {
  // (A*B)^T == B^T * A^T.
  Context ctx;
  auto a = ag::random_matrix(30, 20, 41);
  auto b = ag::random_matrix(20, 25, 42);
  auto ab = multiply(ctx, a, b);
  Matrix<double> dual(25, 30);
  dual.fill(0.0);
  ag::dgemm(Layout::ColMajor, Trans::Trans, Trans::Trans, 25, 30, 20, 1.0, b.data(), b.ld(),
            a.data(), a.ld(), 0.0, dual.data(), dual.ld(), ctx);
  for (index_t i = 0; i < 30; ++i)
    for (index_t j = 0; j < 25; ++j) EXPECT_NEAR(ab(i, j), dual(j, i), 1e-11);
}

TEST(GemmProperties, BlockSizeInvariance) {
  // The result must not depend on the cache block sizes.
  auto a = ag::random_matrix(70, 55, 51);
  auto b = ag::random_matrix(55, 65, 52);
  Context base(ag::KernelShape{8, 6}, 1);
  auto expect = multiply(base, a, b);
  for (index_t kc : {4, 17, 64}) {
    for (index_t mc : {8, 24}) {
      Context ctx(ag::KernelShape{8, 6}, 1);
      ag::BlockSizes bs;
      bs.mr = 8;
      bs.nr = 6;
      bs.kc = kc;
      bs.mc = mc;
      bs.nc = 18;
      ctx.set_block_sizes(bs);
      auto got = multiply(ctx, a, b);
      EXPECT_LT(ag::max_abs_diff(expect.view(), got.view()), 1e-10)
          << "kc=" << kc << " mc=" << mc;
    }
  }
}

struct FuzzCase {
  std::uint64_t seed;
};
class GemmFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(GemmFuzz, RandomShapesAgainstOracle) {
  ag::Xoshiro256 rng(GetParam().seed);
  for (int rep = 0; rep < 6; ++rep) {
    const index_t m = 1 + static_cast<index_t>(rng.next_below(140));
    const index_t n = 1 + static_cast<index_t>(rng.next_below(140));
    const index_t k = 1 + static_cast<index_t>(rng.next_below(140));
    const int threads = 1 + static_cast<int>(rng.next_below(4));
    const double alpha = rng.uniform(-2, 2);
    const double beta = rng.uniform(-2, 2);
    const Trans ta = rng.next_below(2) ? Trans::Trans : Trans::NoTrans;
    const Trans tb = rng.next_below(2) ? Trans::Trans : Trans::NoTrans;

    auto a = ag::random_matrix(ta == Trans::NoTrans ? m : k, ta == Trans::NoTrans ? k : m,
                               rng.next_u64());
    auto b = ag::random_matrix(tb == Trans::NoTrans ? k : n, tb == Trans::NoTrans ? n : k,
                               rng.next_u64());
    auto c = ag::random_matrix(m, n, rng.next_u64());
    Matrix<double> c_ref(c);

    Context ctx(ag::KernelShape{8, 6}, threads);
    ag::dgemm(Layout::ColMajor, ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
              beta, c.data(), c.ld(), ctx);
    ag::blocked_dgemm(Layout::ColMajor, ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(),
                      b.ld(), beta, c_ref.data(), c_ref.ld());
    const auto cmp =
        ag::compare_gemm_result(c.view(), c_ref.view(), k, alpha, 1.0, 1.0, beta, 1.0);
    ASSERT_TRUE(cmp.ok) << "seed=" << GetParam().seed << " rep=" << rep << " m=" << m
                        << " n=" << n << " k=" << k << " t=" << threads
                        << " diff=" << cmp.max_diff;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmFuzz,
                         ::testing::Values(FuzzCase{1}, FuzzCase{2}, FuzzCase{3}, FuzzCase{4},
                                           FuzzCase{5}, FuzzCase{6}, FuzzCase{7}, FuzzCase{8}));

}  // namespace
