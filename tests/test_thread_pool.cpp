// Thread pool, barrier and range partitioning tests.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "common/check.hpp"
#include "scoped_knobs.hpp"
#include "threading/thread_pool.hpp"

using ag::Barrier;
using ag::partition_range;
using ag::Range;
using ag::ThreadPool;

TEST(ThreadPoolTest, RunsAllRanksOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int rank) { hits[static_cast<std::size_t>(rank)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int value = 0;
  pool.run([&](int rank) {
    EXPECT_EQ(rank, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

#if defined(__linux__)
TEST(ThreadPoolTest, WorkersAreNamedByRank) {
  // Worker threads carry "armgemm-w<rank>" names so external profilers
  // and /proc line up with the pool's rank numbering. Rank 0 is the
  // caller's own thread and keeps its name.
  ThreadPool pool(3);
  std::array<std::string, 3> names;
  pool.run([&](int rank) {
    char buf[32] = {0};
    pthread_getname_np(pthread_self(), buf, sizeof(buf));
    names[static_cast<std::size_t>(rank)] = buf;
  });
  EXPECT_EQ(names[1], "armgemm-w1");
  EXPECT_EQ(names[2], "armgemm-w2");
  EXPECT_NE(names[0], "armgemm-w0");  // caller participates unrenamed
}
#endif

TEST(ThreadPoolTest, RepeatedRegionsAccumulate) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.run([&](int) { counter++; });
  EXPECT_EQ(counter.load(), 150);
}

TEST(ThreadPoolTest, WorkerExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([](int rank) {
    if (rank == 2) throw std::runtime_error("boom");
  }),
               std::runtime_error);
  // The pool must remain usable afterwards.
  std::atomic<int> counter{0};
  pool.run([&](int) { counter++; });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPoolTest, CallerExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run([](int rank) {
    if (rank == 0) throw std::logic_error("caller");
  }),
               std::logic_error);
}

TEST(ThreadPoolTest, RejectsZeroThreads) { EXPECT_THROW(ThreadPool(0), ag::InvalidArgument); }

TEST(ThreadPoolTest, ActiveSubsetRunsOnlyLowRanks) {
  // run(fn, active) lets a region use fewer ranks than the pool owns
  // (e.g. when a problem has fewer blocks than threads) without resizing.
  ThreadPool pool(4);
  for (int active = 1; active <= 4; ++active) {
    std::vector<std::atomic<int>> hits(4);
    pool.run([&](int rank) { hits[static_cast<std::size_t>(rank)]++; }, active);
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(hits[static_cast<std::size_t>(r)].load(), r < active ? 1 : 0)
          << "active=" << active << " rank=" << r;
  }
}

TEST(ThreadPoolTest, ActiveOneRunsInlineOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.run([&](int rank) {
    EXPECT_EQ(rank, 0);
    ran_on = std::this_thread::get_id();
  },
           1);
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, ActiveSubsetAlternatesWithFullRegions) {
  // Idle ranks must stay synchronized with the fork-join protocol so the
  // next region (possibly wider) never deadlocks or double-runs.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    const int active = 1 + i % 4;
    pool.run([&](int) { counter++; }, active);
  }
  // Sum over i of (1 + i%4) for i in [0, 100): 25 full cycles of 1+2+3+4.
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPoolTest, ActiveSubsetExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([](int rank) {
    if (rank == 1) throw std::runtime_error("subset boom");
  },
                        3),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.run([&](int) { counter++; });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPoolTest, RejectsActiveOutOfRange) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run([](int) {}, 0), ag::InvalidArgument);
  EXPECT_THROW(pool.run([](int) {}, 3), ag::InvalidArgument);
}

TEST(BarrierTest, SynchronisesPhases) {
  ThreadPool pool(4);
  Barrier barrier(4);
  std::atomic<int> phase1{0};
  std::vector<int> seen(4, -1);
  pool.run([&](int rank) {
    phase1++;
    barrier.arrive_and_wait();
    // After the barrier every rank must observe all phase-1 increments.
    seen[static_cast<std::size_t>(rank)] = phase1.load();
  });
  for (int s : seen) EXPECT_EQ(s, 4);
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  ThreadPool pool(3);
  Barrier barrier(3);
  std::atomic<int> counter{0};
  pool.run([&](int) {
    for (int i = 0; i < 20; ++i) {
      counter++;
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(counter.load(), 60);
}

// Stress the hybrid barrier down both of its paths: a generous spin
// window keeps waiters on the busy-poll fast path; a zero window forces
// every waiter straight onto the condvar slow path. Phase counters verify
// no rank ever runs ahead or drops a generation either way.
void barrier_stress(std::int64_t spin_us) {
  agtest::ScopedSpinUs spin(spin_us);
  constexpr int kRanks = 4;
  constexpr int kPhases = 200;
  ThreadPool pool(kRanks);
  Barrier barrier(kRanks);
  std::vector<std::atomic<int>> phase(kRanks);
  pool.run([&](int rank) {
    for (int p = 0; p < kPhases; ++p) {
      phase[static_cast<std::size_t>(rank)].store(p, std::memory_order_relaxed);
      barrier.arrive_and_wait();
      // Between two barriers every rank must be in the same phase.
      for (int r = 0; r < kRanks; ++r)
        ASSERT_EQ(phase[static_cast<std::size_t>(r)].load(std::memory_order_relaxed), p)
            << "rank " << rank << " saw rank " << r << " out of phase at " << p;
      barrier.arrive_and_wait();
    }
  });
}

TEST(BarrierTest, HybridSpinPathSurvivesStress) { barrier_stress(/*spin_us=*/1000); }

TEST(BarrierTest, ImmediateBlockPathSurvivesStress) { barrier_stress(/*spin_us=*/0); }

TEST(BarrierTest, WaitTimeAccumulatorReportsNonNegative) {
  ThreadPool pool(2);
  Barrier barrier(2);
  std::array<double, 2> waited = {-1.0, -1.0};
  pool.run([&](int rank) {
    double acc = 0.0;
    for (int i = 0; i < 5; ++i) barrier.arrive_and_wait(&acc);
    waited[static_cast<std::size_t>(rank)] = acc;
  });
  for (double w : waited) EXPECT_GE(w, 0.0);
}

TEST(PartitionTest, CoversRangeWithoutOverlap) {
  for (std::int64_t total : {0, 1, 7, 64, 100, 1001}) {
    for (int parts : {1, 2, 3, 8}) {
      for (std::int64_t align : {1, 8, 24}) {
        std::int64_t covered = 0;
        std::int64_t prev_end = 0;
        for (int p = 0; p < parts; ++p) {
          const Range r = partition_range(total, parts, p, align);
          EXPECT_EQ(r.begin, prev_end);
          EXPECT_LE(r.begin, r.end);
          prev_end = r.end;
          covered += r.size();
          // Every part that does not contain the ragged tail is aligned.
          if (r.end < total) EXPECT_EQ(r.size() % align, 0) << "interior chunk alignment";
        }
        EXPECT_EQ(prev_end, total);
        EXPECT_EQ(covered, total);
      }
    }
  }
}

TEST(PartitionTest, BalancedWithinOneChunk) {
  // Parts differ by at most one aligned chunk, plus the ragged tail of the
  // part that owns the end of the range.
  const std::int64_t total = 1000, align = 24;
  std::int64_t lo = total, hi = 0;
  for (int p = 0; p < 8; ++p) {
    const Range r = partition_range(total, 8, p, align);
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LT(hi - lo, 2 * align);
}

TEST(PartitionTest, InvalidArgumentsThrow) {
  EXPECT_THROW(partition_range(10, 0, 0, 1), ag::InvalidArgument);
  EXPECT_THROW(partition_range(10, 2, 2, 1), ag::InvalidArgument);
  EXPECT_THROW(partition_range(10, 2, 0, 0), ag::InvalidArgument);
}
