// Trace-driven simulation tests: load-count accounting matches the
// analytic instruction census, residency claims of Eqs. (15)-(18) hold in
// the simulated caches, the paper's kernel ordering of L1-dcache-loads
// (8x6 < 8x4 < 4x4, Figure 15) emerges, and prefetching cuts L1 misses.
#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "model/machine.hpp"
#include "sim/trace.hpp"

using ag::BlockSizes;
using ag::sim::TraceConfig;
using ag::sim::TraceResult;

namespace {

BlockSizes small_blocks(int mr, int nr) {
  BlockSizes bs;
  bs.mr = mr;
  bs.nr = nr;
  bs.kc = 64;
  bs.mc = 4 * mr;
  bs.nc = 8 * nr;
  return bs;
}

// Kernel loads: ceil(mr/2) + ceil(nr/2) per rank-1 update, plus the C tile
// (mr*nr per tile visit, as 128-bit ldr/str pairs => mr/2*nr loads).
std::uint64_t expected_kernel_loads(const BlockSizes& bs, std::int64_t m, std::int64_t n,
                                    std::int64_t k) {
  const std::int64_t tiles_m = ag::ceil_div(m, static_cast<std::int64_t>(bs.mr));
  const std::int64_t tiles_n = ag::ceil_div(n, static_cast<std::int64_t>(bs.nr));
  const std::int64_t k_passes = ag::ceil_div(k, bs.kc);
  const std::int64_t per_update = ag::ceil_div<std::int64_t>(bs.mr, 2) +
                                  ag::ceil_div<std::int64_t>(bs.nr, 2);
  std::uint64_t loads =
      static_cast<std::uint64_t>(tiles_m * tiles_n * k * per_update);
  // C reads: ragged tiles issue ceil(rows/2) loads per column over `cols`.
  std::uint64_t c_loads = 0;
  for (std::int64_t i = 0; i < m; i += bs.mr) {
    const std::int64_t rows = std::min<std::int64_t>(bs.mr, m - i);
    for (std::int64_t j = 0; j < n; j += bs.nr) {
      const std::int64_t cols = std::min<std::int64_t>(bs.nr, n - j);
      c_loads += static_cast<std::uint64_t>(ag::ceil_div<std::int64_t>(rows, 2) * cols);
    }
  }
  return loads + c_loads * static_cast<std::uint64_t>(k_passes);
}

TEST(TraceTest, KernelLoadCountMatchesCensusNoPacking) {
  const auto& machine = ag::model::xgene();
  TraceConfig cfg;
  cfg.blocks = small_blocks(8, 6);
  cfg.include_packing = false;
  cfg.prefetch = false;
  const std::int64_t m = 64, n = 48, k = 96;
  const TraceResult r = trace_dgemm(machine, cfg, m, n, k);
  EXPECT_EQ(r.totals.l1_dcache_loads, expected_kernel_loads(cfg.blocks, m, n, k));
}

TEST(TraceTest, RaggedShapesCountCorrectly) {
  const auto& machine = ag::model::xgene();
  TraceConfig cfg;
  cfg.blocks = small_blocks(8, 6);
  cfg.include_packing = false;
  cfg.prefetch = false;
  const std::int64_t m = 61, n = 43, k = 70;
  const TraceResult r = trace_dgemm(machine, cfg, m, n, k);
  EXPECT_EQ(r.totals.l1_dcache_loads, expected_kernel_loads(cfg.blocks, m, n, k));
}

TEST(TraceTest, Figure15KernelOrdering) {
  // Per flop, the 8x6 kernel must issue the fewest register loads, then
  // 8x4, then 4x4 — the essence of Figure 15.
  const auto& machine = ag::model::xgene();
  const std::int64_t s = 96;
  double loads86 = 0, loads84 = 0, loads44 = 0;
  for (auto [shape, out] : {std::pair<ag::KernelShape, double*>{{8, 6}, &loads86},
                            {{8, 4}, &loads84},
                            {{4, 4}, &loads44}}) {
    TraceConfig cfg;
    cfg.blocks = small_blocks(shape.mr, shape.nr);
    const TraceResult r = trace_dgemm(machine, cfg, s, s, s);
    *out = static_cast<double>(r.totals.l1_dcache_loads);
  }
  EXPECT_LT(loads86, loads84);
  EXPECT_LT(loads84, loads44);
}

TEST(TraceTest, GebpResidencyMatchesEq15Through18) {
  // Simulate one paper-sized GEBP on the X-Gene hierarchy and verify the
  // occupancy claims: B sliver resident in L1, A block resident in L2
  // (high hit rates on re-passes), B panel resident in L3.
  const auto& machine = ag::model::xgene();
  TraceConfig cfg;
  cfg.blocks = BlockSizes{8, 6, 512, 56, 1920};
  ag::sim::Hierarchy hier(machine);
  // mc x kc = 56 x 512, nc reduced to keep the test fast but >> nr.
  const TraceResult r = ag::sim::trace_gebp(machine, cfg, 56, 384, 512, &hier);
  // Eq. (17): the packed 56 x 512 A block (exactly 7/8 of the L2) must be
  // L2-resident at the end despite the B and C streams passing through.
  const std::uint64_t a_bytes = 56 * 512 * 8;
  EXPECT_GT(hier.l2(0).occupancy(ag::sim::trace_layout::kBasePackedA, a_bytes), 0.5);
  // Eq. (15): the current packed B sliver region stays L1-resident; the
  // last sliver's 24 KB must still be cached (3/4 of the 32 KB L1).
  const std::uint64_t sliver_bytes = 512 * 6 * 8;
  const auto last_sliver = ag::sim::trace_layout::kBasePackedB + (384 / 6 - 1) * sliver_bytes;
  EXPECT_GT(hier.l1(0).occupancy(last_sliver, sliver_bytes), 0.4);
  // L1 miss rate must be modest (the paper measures ~5%, Table VII).
  EXPECT_LT(r.l1_load_miss_rate(), 0.12);
  EXPECT_GT(r.l1_load_miss_rate(), 0.005);
}

TEST(TraceTest, PrefetchReducesL1LoadMisses) {
  const auto& machine = ag::model::xgene();
  TraceConfig with;
  with.blocks = BlockSizes{8, 6, 256, 32, 96};
  TraceConfig without = with;
  without.prefetch = false;
  const std::int64_t s = 128;
  const TraceResult r1 = trace_dgemm(machine, with, s, s, s);
  const TraceResult r0 = trace_dgemm(machine, without, s, s, s);
  EXPECT_LT(r1.totals.l1_dcache_load_misses, r0.totals.l1_dcache_load_misses);
  EXPECT_EQ(r1.totals.l1_dcache_loads, r0.totals.l1_dcache_loads);  // same instructions
}

TEST(TraceTest, EightThreadsSpreadAcrossCores) {
  const auto& machine = ag::model::xgene();
  TraceConfig cfg;
  cfg.blocks = small_blocks(8, 6);
  cfg.threads = 8;
  const std::int64_t s = 96;
  const TraceResult r = trace_dgemm(machine, cfg, s, s, s);
  EXPECT_GT(r.totals.l1_dcache_loads, 0u);
  // All eight cores performed kernel work.
  ag::sim::Hierarchy probe(machine);  // only for core count
  (void)probe;
}

TEST(TraceTest, ThreadedMatchesSerialTotalLoadsNoPacking) {
  // The kernel load census is independent of the thread partition.
  const auto& machine = ag::model::xgene();
  TraceConfig base;
  base.blocks = small_blocks(8, 6);
  base.include_packing = false;
  base.prefetch = false;
  TraceConfig threaded = base;
  threaded.threads = 4;
  const std::int64_t s = 80;
  const TraceResult r1 = trace_dgemm(machine, base, s, s, s);
  const TraceResult r4 = trace_dgemm(machine, threaded, s, s, s);
  EXPECT_EQ(r1.totals.l1_dcache_loads, r4.totals.l1_dcache_loads);
}

TEST(TraceTest, MemoryTrafficBounded) {
  // Every byte of A, B, C must come from memory at least once, and not
  // absurdly more often with sound blocking.
  const auto& machine = ag::model::xgene();
  TraceConfig cfg;
  cfg.blocks = small_blocks(8, 6);
  const std::int64_t s = 96;
  const TraceResult r = trace_dgemm(machine, cfg, s, s, s);
  const std::uint64_t min_lines = static_cast<std::uint64_t>(3 * s * s * 8 / 64);
  EXPECT_GE(r.memory_reads, min_lines / 2);
  EXPECT_LE(r.memory_reads, min_lines * 20);
}

TEST(TraceTest, FlopsReported) {
  const auto& machine = ag::model::xgene();
  TraceConfig cfg;
  cfg.blocks = small_blocks(4, 4);
  const TraceResult r = trace_dgemm(machine, cfg, 32, 32, 32);
  EXPECT_DOUBLE_EQ(r.flops, 2.0 * 32 * 32 * 32);
}

}  // namespace
