// Reference DGEMM oracle tests: hand-computed cases, BLAS semantics
// (alpha/beta/transpose/layout), argument validation, and agreement
// between the naive and blocked reference implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/matrix.hpp"

using ag::Layout;
using ag::Matrix;
using ag::Trans;

namespace {

TEST(ReferenceGemm, HandComputed2x2) {
  // A = [1 2; 3 4], B = [5 6; 7 8] (column-major): C = A*B.
  const double a[] = {1, 3, 2, 4};
  const double b[] = {5, 7, 6, 8};
  double c[4] = {};
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 2, 2, 1.0, a, 2, b,
                      2, 0.0, c, 2);
  EXPECT_DOUBLE_EQ(c[0], 19);  // 1*5 + 2*7
  EXPECT_DOUBLE_EQ(c[1], 43);  // 3*5 + 4*7
  EXPECT_DOUBLE_EQ(c[2], 22);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(ReferenceGemm, AlphaBetaSemantics) {
  const double a[] = {2};
  const double b[] = {3};
  double c[1] = {10};
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 1, 1, 1, 2.0, a, 1, b,
                      1, 0.5, c, 1);
  EXPECT_DOUBLE_EQ(c[0], 2.0 * 6 + 0.5 * 10);
}

TEST(ReferenceGemm, BetaZeroOverwritesNaN) {
  // BLAS requires beta == 0 to overwrite C even if it holds NaN.
  const double a[] = {1};
  const double b[] = {1};
  double c[1] = {std::nan("")};
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 1, 1, 1, 1.0, a, 1, b,
                      1, 0.0, c, 1);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
}

TEST(ReferenceGemm, KZeroScalesOnly) {
  double c[2] = {3, 4};
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 1, 0, 1.0, nullptr,
                      2, nullptr, 1, 2.0, c, 2);
  EXPECT_DOUBLE_EQ(c[0], 6);
  EXPECT_DOUBLE_EQ(c[1], 8);
}

TEST(ReferenceGemm, TransposeA) {
  // op(A) = A^T with A = [1 2; 3 4] stored col-major => op(A) = [1 3; 2 4].
  const double a[] = {1, 3, 2, 4};
  const double b[] = {1, 0, 0, 1};  // identity
  double c[4] = {};
  ag::reference_dgemm(Layout::ColMajor, Trans::Trans, Trans::NoTrans, 2, 2, 2, 1.0, a, 2, b, 2,
                      0.0, c, 2);
  EXPECT_DOUBLE_EQ(c[0], 1);
  EXPECT_DOUBLE_EQ(c[1], 2);
  EXPECT_DOUBLE_EQ(c[2], 3);
  EXPECT_DOUBLE_EQ(c[3], 4);
}

TEST(ReferenceGemm, RowMajorMatchesColMajorTransposed) {
  ag::Xoshiro256 rng(3);
  Matrix<double> a(4, 3);
  Matrix<double> b(3, 5);
  a.fill_random(rng);
  b.fill_random(rng);
  Matrix<double> c_col(4, 5);
  c_col.fill(0);
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 4, 5, 3, 1.0, a.data(),
                      a.ld(), b.data(), b.ld(), 0.0, c_col.data(), c_col.ld());
  // Row-major with swapped operands: C_rm = B_cm-data treated as row-major
  // A^T etc. Compute the same product via the row-major entry point by
  // viewing the column-major arrays as row-major transposes.
  Matrix<double> c_rm(5, 4);  // row-major 4x5 = col-major 5x4 storage
  c_rm.fill(0);
  ag::reference_dgemm(Layout::RowMajor, Trans::Trans, Trans::Trans, 4, 5, 3, 1.0, a.data(), 4,
                      b.data(), 3, 0.0, c_rm.data(), 5);
  for (ag::index_t i = 0; i < 4; ++i)
    for (ag::index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(c_col(i, j), c_rm(j, i), 1e-12) << i << "," << j;
}

TEST(ReferenceGemm, ValidatesArguments) {
  double x[4] = {};
  EXPECT_THROW(ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, -1, 1, 1,
                                   1.0, x, 1, x, 1, 0.0, x, 1),
               ag::InvalidArgument);
  // lda too small for a 2xk NoTrans A.
  EXPECT_THROW(ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 1, 1,
                                   1.0, x, 1, x, 1, 0.0, x, 2),
               ag::InvalidArgument);
  EXPECT_THROW(ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 2, 1, 1,
                                   1.0, nullptr, 2, x, 1, 0.0, x, 2),
               ag::InvalidArgument);
}

TEST(ReferenceGemm, MZeroIsNoOp) {
  double c[1] = {7};
  ag::reference_dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, 0, 0, 5, 1.0, nullptr,
                      1, nullptr, 5, 0.0, c, 1);
  EXPECT_DOUBLE_EQ(c[0], 7);  // untouched
}

struct Shape {
  ag::index_t m, n, k;
};

class BlockedVsNaive : public ::testing::TestWithParam<Shape> {};

TEST_P(BlockedVsNaive, AllTransposeCombos) {
  const auto [m, n, k] = GetParam();
  for (Trans ta : {Trans::NoTrans, Trans::Trans}) {
    for (Trans tb : {Trans::NoTrans, Trans::Trans}) {
      const ag::index_t a_rows = ta == Trans::NoTrans ? m : k;
      const ag::index_t a_cols = ta == Trans::NoTrans ? k : m;
      const ag::index_t b_rows = tb == Trans::NoTrans ? k : n;
      const ag::index_t b_cols = tb == Trans::NoTrans ? n : k;
      auto a = ag::random_matrix(a_rows, a_cols, 11);
      auto b = ag::random_matrix(b_rows, b_cols, 13);
      auto c1 = ag::random_matrix(m, n, 17);
      Matrix<double> c2(c1);
      ag::reference_dgemm(Layout::ColMajor, ta, tb, m, n, k, 1.5, a.data(), a.ld(), b.data(),
                          b.ld(), 0.5, c1.data(), c1.ld());
      ag::blocked_dgemm(Layout::ColMajor, ta, tb, m, n, k, 1.5, a.data(), a.ld(), b.data(),
                        b.ld(), 0.5, c2.data(), c2.ld());
      const auto cmp = ag::compare_gemm_result(c2.view(), c1.view(), k, 1.5, 1.0, 1.0, 0.5, 1.0);
      EXPECT_TRUE(cmp.ok) << "ta=" << ag::to_string(ta) << " tb=" << ag::to_string(tb)
                          << " diff=" << cmp.max_diff << " bound=" << cmp.bound;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockedVsNaive,
                         ::testing::Values(Shape{1, 1, 1}, Shape{7, 5, 3}, Shape{64, 64, 64},
                                           Shape{65, 63, 130}, Shape{128, 17, 96},
                                           Shape{33, 129, 65}));

}  // namespace
