// Unit tests for the phase-attribution primitives (obs/phase): the
// CallPhases timeline arithmetic, the PhaseScope RAII clock, the stable
// phase names, and the share-histogram quantile reader.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/phase.hpp"

namespace ag::obs {
namespace {

TEST(Phase, NamesAreStableAndLowercase) {
  EXPECT_STREQ("queue_wait", phase_name(Phase::kQueueWait));
  EXPECT_STREQ("pack_a", phase_name(Phase::kPackA));
  EXPECT_STREQ("pack_b", phase_name(Phase::kPackB));
  EXPECT_STREQ("kernel", phase_name(Phase::kKernel));
  EXPECT_STREQ("barrier", phase_name(Phase::kBarrier));
  EXPECT_STREQ("cache_stall", phase_name(Phase::kCacheStall));
  EXPECT_STREQ("epilogue", phase_name(Phase::kEpilogue));
  EXPECT_STREQ("unknown", phase_name(-1));
  EXPECT_STREQ("unknown", phase_name(kPhaseCount));
}

TEST(Phase, AddIgnoresNonPositive) {
  CallPhases p;
  p.add(Phase::kKernel, 0.5);
  p.add(Phase::kKernel, -1.0);
  p.add(Phase::kKernel, 0.0);
  EXPECT_DOUBLE_EQ(0.5, p.seconds[static_cast<int>(Phase::kKernel)]);
  EXPECT_DOUBLE_EQ(0.5, p.total());
}

TEST(Phase, SlotAliasesTheSecondsArray) {
  CallPhases p;
  *p.slot(Phase::kPackB) += 0.25;
  EXPECT_DOUBLE_EQ(0.25, p.seconds[static_cast<int>(Phase::kPackB)]);
}

TEST(Phase, MergeSumsEveryPhase) {
  CallPhases a, b;
  a.add(Phase::kPackA, 0.1);
  a.add(Phase::kKernel, 1.0);
  b.add(Phase::kKernel, 2.0);
  b.add(Phase::kBarrier, 0.3);
  a.merge(b);
  EXPECT_DOUBLE_EQ(0.1, a.seconds[static_cast<int>(Phase::kPackA)]);
  EXPECT_DOUBLE_EQ(3.0, a.seconds[static_cast<int>(Phase::kKernel)]);
  EXPECT_DOUBLE_EQ(0.3, a.seconds[static_cast<int>(Phase::kBarrier)]);
  EXPECT_NEAR(3.4, a.total(), 1e-12);
}

TEST(Phase, AttributionDividesByWorkers) {
  // Four ranks each spent 1s in the kernel: the call's wall clock saw
  // 1s of kernel time, not 4 — attribution must divide by the rank
  // count so the per-call shares stay within [0, 1].
  CallPhases p;
  p.add(Phase::kKernel, 4.0);
  p.add(Phase::kBarrier, 2.0);
  p.workers = 4;
  EXPECT_DOUBLE_EQ(1.0, p.attributed(static_cast<int>(Phase::kKernel)));
  EXPECT_DOUBLE_EQ(0.5, p.attributed(static_cast<int>(Phase::kBarrier)));
  EXPECT_DOUBLE_EQ(1.5, p.attributed_total());
  p.workers = 0;  // defensive: never divide by zero
  EXPECT_DOUBLE_EQ(0.0, p.attributed_total());
}

TEST(Phase, ScopeAccumulatesElapsedTime) {
  CallPhases p;
  {
    PhaseScope scope(p.slot(Phase::kPackA));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double got = p.seconds[static_cast<int>(Phase::kPackA)];
  EXPECT_GT(got, 1e-3);
  EXPECT_LT(got, 1.0);  // sanity: not wildly off
}

TEST(Phase, ScopeNestedScopesSumIntoTheirPhases) {
  CallPhases p;
  {
    PhaseScope outer(p.slot(Phase::kKernel));
    PhaseScope inner(p.slot(Phase::kPackB));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Both scopes covered the same sleep, each into its own phase.
  EXPECT_GT(p.seconds[static_cast<int>(Phase::kKernel)], 5e-4);
  EXPECT_GT(p.seconds[static_cast<int>(Phase::kPackB)], 5e-4);
}

TEST(Phase, NullScopeIsANoop) {
  PhaseScope scope(nullptr);  // must not read the clock or crash
  SUCCEED();
}

/// Folds `count` calls with the given share into a snapshot-side
/// histogram the way the telemetry layer's AtomicHistogram + snapshot
/// pair would: counts by 0.02-wide bucket, sum/max in natural units.
void record_share(PhaseShareHistogram& h, double share, int count) {
  for (int i = 0; i < count; ++i) {
    h.counts[static_cast<std::size_t>(efficiency_bucket(share))]++;
    h.total++;
    h.sum += share;
    if (share > h.max) h.max = share;
  }
}

TEST(Phase, ShareQuantileEmptyIsZero) {
  PhaseShareHistogram h;
  EXPECT_DOUBLE_EQ(0.0, share_quantile(h, 0.5));
}

TEST(Phase, ShareQuantileReadsBucketMidpoints) {
  // 90 calls with ~10% share, 10 calls with ~50% share: p50 lands in
  // the 0.10 bucket, p99 in the 0.50 bucket.
  PhaseShareHistogram h;
  record_share(h, 0.10, 90);
  record_share(h, 0.50, 10);

  const double p50 = share_quantile(h, 0.50);
  const double p99 = share_quantile(h, 0.99);
  EXPECT_NEAR(0.10, p50, 0.02);
  EXPECT_NEAR(0.50, p99, 0.02);
  EXPECT_LE(p50, p99);
}

TEST(Phase, ShareQuantileClampsToRecordedMax) {
  PhaseShareHistogram h;
  record_share(h, 0.30, 5);
  // The covering bucket's midpoint may exceed the true maximum; the
  // reader must clamp to the recorded max.
  EXPECT_LE(share_quantile(h, 1.0), 0.30 + 1e-9);
  EXPECT_NEAR(0.30, h.mean(), 1e-12);
}

}  // namespace
}  // namespace ag::obs
