// The PMU layer's contract: counts arithmetic is exact, groups open and
// degrade per event, the collector attributes regions to (rank, layer)
// through real dgemm calls, and every path works identically whether the
// host exposes hardware counters or not. Hardware-only assertions are
// gated on PmuGroup::hardware_available(); the forced-fallback tests
// exercise the degradation chain even on counter-capable hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/json.hpp"
#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "obs/expected.hpp"
#include "obs/gemm_stats.hpp"
#include "obs/pmu.hpp"
#include "scoped_knobs.hpp"

using ag::index_t;
using ag::obs::PmuCollector;
using ag::obs::PmuCounts;
using ag::obs::PmuEvent;
using ag::obs::PmuGroup;
using ag::obs::PmuLayer;
using ag::obs::PmuRegion;
using ag::obs::PmuSource;

namespace {

/// Saves and restores the process-wide fallback switch so tests compose.
class ForcedFallbackGuard {
 public:
  explicit ForcedFallbackGuard(bool forced) : saved_(ag::obs::pmu_forced_fallback()) {
    ag::obs::pmu_set_forced_fallback(forced);
  }
  ~ForcedFallbackGuard() { ag::obs::pmu_set_forced_fallback(saved_); }

 private:
  bool saved_;
};

ag::BlockSizes tiny_blocks() {
  ag::BlockSizes bs;
  bs.mr = 8;
  bs.nr = 6;
  bs.kc = 8;
  bs.mc = 16;
  bs.nc = 12;
  return bs;
}

void run_dgemm(const ag::Context& ctx, index_t m, index_t n, index_t k) {
  auto a = ag::random_matrix(m, k, 1);
  auto b = ag::random_matrix(k, n, 2);
  auto c = ag::random_matrix(m, n, 3);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.0,
            a.data(), a.ld(), b.data(), b.ld(), 1.0, c.data(), c.ld(), ctx);
}

/// Burns a few microseconds of real work so time-derived counters move.
volatile double g_sink = 0;
void busy_work() {
  double x = 1.0;
  for (int i = 0; i < 200000; ++i) x = x * 1.0000001 + 1e-9;
  g_sink = x;
}

TEST(PmuCounts, DeltaSaturatesPerEvent) {
  PmuCounts begin, end;
  begin[PmuEvent::kCycles] = 100;
  end[PmuEvent::kCycles] = 350;
  begin[PmuEvent::kInstructions] = 500;  // counter went "backwards" (reopen)
  end[PmuEvent::kInstructions] = 200;
  const PmuCounts d = PmuCounts::delta(begin, end);
  EXPECT_EQ(d[PmuEvent::kCycles], 250u);
  EXPECT_EQ(d[PmuEvent::kInstructions], 0u);  // saturates, never wraps
  EXPECT_EQ(d[PmuEvent::kL1dAccess], 0u);
}

TEST(PmuCounts, AccumulateAndDerivedMetrics) {
  PmuCounts a;
  a[PmuEvent::kCycles] = 1000;
  a[PmuEvent::kInstructions] = 2500;
  a[PmuEvent::kL1dAccess] = 400;
  a[PmuEvent::kL1dRefill] = 40;
  a[PmuEvent::kStallCycles] = 250;
  PmuCounts b = a;
  b += a;
  EXPECT_EQ(b[PmuEvent::kCycles], 2000u);
  EXPECT_EQ(b[PmuEvent::kL1dRefill], 80u);
  EXPECT_DOUBLE_EQ(a.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(a.l1d_miss_rate(), 0.1);
  EXPECT_DOUBLE_EQ(a.stall_fraction(), 0.25);
}

TEST(PmuCounts, DerivedMetricsGuardZeroDenominators) {
  const PmuCounts zero;
  EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(zero.l1d_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(zero.stall_fraction(), 0.0);
}

TEST(PmuStrings, EveryEnumValueNamed) {
  for (int e = 0; e < ag::obs::kPmuEventCount; ++e)
    EXPECT_STRNE(to_string(static_cast<PmuEvent>(e)), "?");
  for (int l = 0; l < ag::obs::kPmuLayerCount; ++l)
    EXPECT_STRNE(to_string(static_cast<PmuLayer>(l)), "?");
  EXPECT_STREQ(to_string(PmuSource::kHardware), "hw");
  EXPECT_STREQ(to_string(PmuSource::kUnavailable), "n/a");
}

TEST(PmuGroup, OpensAndReadsMonotonically) {
  PmuGroup g;
  g.open();
  EXPECT_TRUE(g.is_open());
  // Cycles always have at least the synthetic timestamp fallback.
  EXPECT_NE(g.source(PmuEvent::kCycles), PmuSource::kUnavailable);
  const PmuCounts first = g.read();
  busy_work();
  const PmuCounts second = g.read();
  EXPECT_GE(second[PmuEvent::kCycles], first[PmuEvent::kCycles]);
  EXPECT_GT(second[PmuEvent::kCycles], 0u);
  g.close();
  EXPECT_FALSE(g.is_open());
  EXPECT_FALSE(g.any_hardware());
  EXPECT_EQ(g.read()[PmuEvent::kCycles], 0u);
}

TEST(PmuGroup, HardwareCountersCountRealWork) {
  if (!PmuGroup::hardware_available()) GTEST_SKIP() << "no hardware PMU on this host";
  PmuGroup g;
  EXPECT_TRUE(g.open());
  EXPECT_TRUE(g.any_hardware());
  EXPECT_EQ(g.source(PmuEvent::kCycles), PmuSource::kHardware);
  const PmuCounts before = g.read();
  busy_work();
  const PmuCounts d = PmuCounts::delta(before, g.read());
  // The busy loop retires >= one instruction per iteration.
  EXPECT_GT(d[PmuEvent::kCycles], 0u);
  EXPECT_GT(d[PmuEvent::kInstructions], 100000u);
}

TEST(PmuGroup, ForcedFallbackDegradesHonestly) {
  ForcedFallbackGuard guard(true);
  EXPECT_TRUE(ag::obs::pmu_forced_fallback());
  EXPECT_FALSE(PmuGroup::hardware_available());
  PmuGroup g;
  EXPECT_FALSE(g.open());  // no hardware event opened
  EXPECT_FALSE(g.any_hardware());
  EXPECT_EQ(g.source(PmuEvent::kCycles), PmuSource::kSynthetic);
  for (PmuEvent e : {PmuEvent::kInstructions, PmuEvent::kL1dAccess, PmuEvent::kL1dRefill,
                     PmuEvent::kL2Refill, PmuEvent::kStallCycles, PmuEvent::kBranchMisses})
    EXPECT_EQ(g.source(e), PmuSource::kUnavailable) << to_string(e);
  busy_work();
  const PmuCounts c = g.read();
  EXPECT_GT(c[PmuEvent::kCycles], 0u);  // synthetic: 1 "cycle" == 1 ns
  EXPECT_EQ(c[PmuEvent::kL1dAccess], 0u);
  EXPECT_EQ(c[PmuEvent::kInstructions], 0u);
}

TEST(PmuRegionTest, NullCollectorIsNoOp) {
  PmuRegion region(nullptr, 0, PmuLayer::kGebp);  // must not crash or allocate fds
}

TEST(PmuCollector, SerialDgemmAttributesRegionsPerLayer) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  // 32x24x16 sits under the default fast-path threshold; pin the packed
  // path so the per-layer region arithmetic applies.
  agtest::ScopedSmallMnk pack_path(0);
  const ag::BlockSizes bs = tiny_blocks();
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ctx.set_block_sizes(bs);
  ag::obs::GemmStats stats;
  PmuCollector pmu;
  stats.set_pmu(&pmu);
  ctx.set_stats(&stats);

  const index_t m = 32, n = 24, k = 16;
  run_dgemm(ctx, m, n, k);

  // The serial driver brackets one PmuRegion per pack/GEBP call, so the
  // region counts must equal the blocking arithmetic exactly.
  const auto want = ag::obs::expected_gemm_counters(m, n, k, bs);
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kTotal), 1u);
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kPackA), want.pack_a_calls);
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kPackB), want.pack_b_calls);
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kGebp), want.gebp_calls);
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kBarrier), 0u);  // no barriers serial
  EXPECT_EQ(pmu.discarded_regions(), 0u);

  const PmuCounts total = pmu.layer_totals(PmuLayer::kTotal);
  const PmuCounts gebp = pmu.layer_totals(PmuLayer::kGebp);
  EXPECT_GT(total[PmuEvent::kCycles], 0u);
  EXPECT_GT(gebp[PmuEvent::kCycles], 0u);
  // GEBP nests inside the total region on the same thread; allow slack
  // for multiplex scaling jitter on hardware counters.
  EXPECT_LE(gebp[PmuEvent::kCycles],
            total[PmuEvent::kCycles] + total[PmuEvent::kCycles] / 4 + 10000);

  // Serial: everything lands on rank 0.
  const PmuCounts rank0 = pmu.rank_layer_totals(0, PmuLayer::kTotal);
  EXPECT_EQ(rank0[PmuEvent::kCycles], total[PmuEvent::kCycles]);
}

TEST(PmuCollector, ParallelDgemmAttributesBarriersWithoutDiscards) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 2);
  ctx.set_block_sizes(tiny_blocks());
  ag::obs::GemmStats stats;
  PmuCollector pmu;
  stats.set_pmu(&pmu);
  ctx.set_stats(&stats);

  run_dgemm(ctx, 96, 48, 32);

  EXPECT_EQ(pmu.layer_regions(PmuLayer::kTotal), 1u);
  EXPECT_GT(pmu.layer_regions(PmuLayer::kPackA), 0u);
  EXPECT_GT(pmu.layer_regions(PmuLayer::kPackB), 0u);
  EXPECT_GT(pmu.layer_regions(PmuLayer::kGebp), 0u);
  // One barrier region per k-panel per rank (pipelined packing folded
  // the second sync away), and nranks divides the total.
  EXPECT_GT(pmu.layer_regions(PmuLayer::kBarrier), 0u);
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kBarrier) % 2, 0u);
  // Pool ranks keep stable owner threads, so no delta is ever discarded.
  EXPECT_EQ(pmu.discarded_regions(), 0u);
  EXPECT_GT(pmu.layer_totals(PmuLayer::kTotal)[PmuEvent::kCycles], 0u);
}

TEST(PmuCollector, ResetZeroesAccumulatorsButKeepsProvenance) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ctx.set_block_sizes(tiny_blocks());
  ag::obs::GemmStats stats;
  PmuCollector pmu;
  stats.set_pmu(&pmu);
  ctx.set_stats(&stats);
  run_dgemm(ctx, 16, 12, 8);
  ASSERT_GT(pmu.layer_regions(PmuLayer::kTotal), 0u);

  const bool hw_before = pmu.any_hardware();
  pmu.reset();
  for (int l = 0; l < ag::obs::kPmuLayerCount; ++l) {
    const PmuLayer layer = static_cast<PmuLayer>(l);
    EXPECT_EQ(pmu.layer_regions(layer), 0u);
    EXPECT_EQ(pmu.layer_totals(layer)[PmuEvent::kCycles], 0u);
  }
  EXPECT_EQ(pmu.discarded_regions(), 0u);
  EXPECT_EQ(pmu.any_hardware(), hw_before);  // groups stay open

  // The collector keeps recording after a reset.
  run_dgemm(ctx, 16, 12, 8);
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kTotal), 1u);
}

TEST(PmuCollector, ToJsonIsWellFormedAndComplete) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ctx.set_block_sizes(tiny_blocks());
  ag::obs::GemmStats stats;
  PmuCollector pmu;
  stats.set_pmu(&pmu);
  ctx.set_stats(&stats);
  run_dgemm(ctx, 16, 12, 8);

  std::string err;
  const ag::JsonValue doc = ag::JsonValue::parse(pmu.to_json(), &err);
  ASSERT_TRUE(doc.is_object()) << err;
  EXPECT_TRUE(doc.has("available"));
  EXPECT_TRUE(doc.has("forced_fallback"));
  EXPECT_TRUE(doc["events"].is_object());
  EXPECT_FALSE(doc["events"]["cycles"].as_string().empty());
  ASSERT_TRUE(doc["layers"].is_object());
  for (const char* layer : {"total", "pack_a", "pack_b", "gebp", "barrier", "kernel"})
    EXPECT_TRUE(doc["layers"][layer].has("regions")) << layer;
  EXPECT_DOUBLE_EQ(doc["layers"]["total"]["regions"].as_number(), 1.0);
  EXPECT_GT(doc["layers"]["total"]["cycles"].as_number(), 0.0);
}

TEST(PmuCollector, ForcedFallbackEndToEndThroughDgemm) {
  if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
  ForcedFallbackGuard guard(true);
  ag::Context ctx(ag::KernelShape{8, 6}, 2);
  ctx.set_block_sizes(tiny_blocks());
  ag::obs::GemmStats stats;
  PmuCollector pmu;
  stats.set_pmu(&pmu);
  ctx.set_stats(&stats);

  run_dgemm(ctx, 64, 48, 32);

  EXPECT_FALSE(pmu.any_hardware());
  const auto src = pmu.sources();
  EXPECT_EQ(src[static_cast<int>(PmuEvent::kCycles)], PmuSource::kSynthetic);
  EXPECT_EQ(src[static_cast<int>(PmuEvent::kL1dAccess)], PmuSource::kUnavailable);
  const PmuCounts total = pmu.layer_totals(PmuLayer::kTotal);
  EXPECT_GT(total[PmuEvent::kCycles], 0u);  // wall-derived synthetic cycles
  EXPECT_EQ(total[PmuEvent::kL1dAccess], 0u);
  EXPECT_EQ(total[PmuEvent::kInstructions], 0u);
  EXPECT_EQ(pmu.discarded_regions(), 0u);

  std::string err;
  const ag::JsonValue doc = ag::JsonValue::parse(pmu.to_json(), &err);
  ASSERT_TRUE(doc.is_object()) << err;
  EXPECT_FALSE(doc["available"].as_bool(true));
  EXPECT_TRUE(doc["forced_fallback"].as_bool(false));
  EXPECT_EQ(doc["events"]["cycles"].as_string(), "syn");
  EXPECT_EQ(doc["events"]["l1d_access"].as_string(), "n/a");
}

TEST(PmuCollector, RankSaturationBeyondMaxThreads) {
  PmuCollector pmu(2);
  EXPECT_EQ(pmu.max_threads(), 2);
  {
    PmuRegion region(&pmu, 99, PmuLayer::kKernel);  // clamps into the last rank
    busy_work();
  }
  EXPECT_EQ(pmu.layer_regions(PmuLayer::kKernel), 1u);
  EXPECT_EQ(pmu.rank_layer_totals(1, PmuLayer::kKernel)[PmuEvent::kCycles],
            pmu.layer_totals(PmuLayer::kKernel)[PmuEvent::kCycles]);
}

}  // namespace
