// End-to-end tests for the black-box forensics pipeline (obs/forensics):
// injected drift and slow-call anomalies must each produce exactly one
// schema-valid bundle under the rate limit, manual captures bypass the
// limit, concurrent anomalies resolve to one winner (CAS-claimed clock),
// and a -DARMGEMM_STATS=OFF build produces nothing at all.
//
// Injection recipes mirror bench/forensics_inject.cpp: drift by swapping
// the injected perf model mid-run (a different same-class shape dodges
// the per-thread expected-Gflops memo), slow calls by a pathologically
// blocked context (kc=mc=8, nc=6) against a warm class p99.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/knobs.hpp"
#include "common/matrix.hpp"
#include "core/context.hpp"
#include "core/gemm.hpp"
#include "model/perf_model.hpp"
#include "obs/forensics.hpp"
#include "obs/telemetry.hpp"

namespace {

using ag::obs::ForensicsReason;
using ag::obs::ForensicsStats;

constexpr int kDrift = static_cast<int>(ForensicsReason::kDrift);
constexpr int kSlowCall = static_cast<int>(ForensicsReason::kSlowCall);
constexpr int kManual = static_cast<int>(ForensicsReason::kManual);

void run_square(ag::Context& ctx, std::int64_t s, int calls, unsigned seed = 11) {
  auto a = ag::random_matrix(s, s, seed);
  auto b = ag::random_matrix(s, s, seed + 1);
  auto c = ag::random_matrix(s, s, seed + 2);
  for (int i = 0; i < calls; ++i)
    ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, s, s, s, 1.0,
              a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(), ctx);
}

/// Serial context whose tiny blocking makes any call ~10-30x slower than
/// the default path: the deterministic "slow call" for threshold tests.
ag::Context pathological_context() {
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  ag::BlockSizes tiny;
  tiny.kc = 8;
  tiny.mc = 8;
  tiny.nc = 6;
  ctx.set_block_sizes(tiny);
  return ctx;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Test fixture: telemetry on with an injected honest model, forensics
/// counters zeroed, every knob restored on teardown.
class ForensicsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled out";
    prev_metrics_ = ag::metrics_path();
    prev_dir_ = ag::forensics_dir();
    prev_interval_ = ag::forensics_interval_s();
    prev_factor_ = ag::slow_call_factor();
    prev_drift_ = ag::drift_threshold();
    ag::set_metrics_path("");
    ag::set_forensics_dir("");
    ag::set_forensics_interval_s(3600.0);
    ag::set_slow_call_factor(0.0);
    ag::set_drift_threshold(1000.0);
    ag::obs::telemetry_set_model(10.0, ag::model::CostParams{1e-10, 1e-9, 0.125}, 1.0);
    ag::obs::telemetry_enable();
    ag::obs::telemetry_reset();
  }

  void TearDown() override {
    if (!ag::obs::stats_compiled_in) return;
    ag::obs::telemetry_disable();
    ag::obs::telemetry_reset();
    ag::set_metrics_path(prev_metrics_);
    ag::set_forensics_dir(prev_dir_);
    ag::set_forensics_interval_s(prev_interval_);
    ag::set_slow_call_factor(prev_factor_);
    ag::set_drift_threshold(prev_drift_);
  }

  /// Fresh per-test bundle directory under the gtest temp root.
  std::string make_bundle_dir(const char* name) {
    const std::string dir = testing::TempDir() + "armgemm_forensics_" + name;
    ::mkdir(dir.c_str(), 0755);
    // Clear bundles from a previous run of the same test binary.
    for (int seq = 0; seq < 64; ++seq)
      for (const char* reason : {"drift", "slow_call", "manual"})
        ::remove((dir + "/forensics-" + std::to_string(seq) + "-" + reason + ".json").c_str());
    return dir;
  }

  /// Warms one lane's square/d5 p99 with steady 48^3 calls (prime first
  /// so cold-start outliers don't inflate the reference quantile).
  void warm_slow_class(ag::Context& ctx) {
    run_square(ctx, 48, 20);
    ag::obs::telemetry_reset();
    run_square(ctx, 48, 150);
  }

 private:
  std::string prev_metrics_, prev_dir_;
  double prev_interval_ = 60.0, prev_factor_ = 8.0, prev_drift_ = 0.25;
};

TEST_F(ForensicsTest, InjectedDriftProducesOneSchemaValidBundle) {
  const std::string dir = make_bundle_dir("drift");
  ag::set_forensics_dir(dir);
  ag::Context ctx(ag::KernelShape{8, 6}, 1);

  // Baseline under a loose threshold (warm-up noise must not trigger),
  // then sabotage the model and tighten: the measured/expected ratio
  // jumps ~100x and the detector flags the step.
  ag::set_drift_threshold(5.0);
  run_square(ctx, 96, 20);
  ag::obs::telemetry_reset();
  run_square(ctx, 96, 60);
  ASSERT_EQ(0u, ag::obs::telemetry_anomaly_count()) << "baseline drifted";
  ag::set_drift_threshold(0.25);
  ag::obs::telemetry_set_model(10.0, ag::model::CostParams{1e-8, 1e-9, 0.125}, 1.0);
  for (int i = 0; i < 200 && ag::obs::telemetry_anomaly_count() == 0; ++i)
    run_square(ctx, 80, 1, 31);
  ASSERT_GT(ag::obs::telemetry_anomaly_count(), 0u) << "drift never flagged";

  const ForensicsStats s = ag::obs::forensics_stats();
  EXPECT_EQ(1u, s.captures[kDrift]);
  EXPECT_EQ(0u, s.captures[kSlowCall]);
  ASSERT_EQ(1u, s.written);
  EXPECT_EQ("drift", s.last_reason);
  EXPECT_GT(s.last_wall_seconds, 0.0);
  EXPECT_FALSE(s.last_top_phase.empty());

  const std::string bundle = slurp(s.last_path);
  ASSERT_FALSE(bundle.empty()) << s.last_path;
  EXPECT_NE(std::string::npos, bundle.find("\"schema\":\"armgemm-forensics/1\""));
  EXPECT_NE(std::string::npos, bundle.find("\"reason\":\"drift\""));
  EXPECT_NE(std::string::npos, bundle.find("\"flight\":["));
  // The on-disk bundle is the in-memory JSON plus the POSIX trailing
  // newline the writer appends.
  EXPECT_EQ(bundle, ag::obs::forensics_last_bundle_json() + "\n");
}

TEST_F(ForensicsTest, InjectedSlowCallCapturesOnceUnderRateLimit) {
  const std::string dir = make_bundle_dir("slow");
  ag::set_forensics_dir(dir);
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  warm_slow_class(ctx);

  ag::set_slow_call_factor(3.0);
  ag::Context slow_ctx = pathological_context();
  // Two detections are needed (the second exercises the rate limit). On
  // a plain build every pathological call clears 3 x p99 with a ~30x
  // margin; under TSan the warm window's p99 is inflated by multi-ms
  // instrumentation outliers, so allow a bounded retry. The loop stays
  // well short of the 64-record p99 refresh, so the pathological calls
  // never poison the reference quantile they are measured against.
  for (int i = 0; i < 12 && ag::obs::forensics_stats().slow_calls < 2; ++i)
    run_square(slow_ctx, 96, 1);
  ag::set_slow_call_factor(0.0);

  const ForensicsStats s = ag::obs::forensics_stats();
  EXPECT_GE(s.slow_calls, 2u);
  EXPECT_EQ(1u, s.captures[kSlowCall]) << "rate limit must keep one bundle";
  EXPECT_GE(s.suppressed, 1u);
  ASSERT_EQ(1u, s.written);
  EXPECT_EQ("slow_call", s.last_reason);

  const std::string bundle = slurp(s.last_path);
  ASSERT_FALSE(bundle.empty()) << s.last_path;
  EXPECT_NE(std::string::npos, bundle.find("\"reason\":\"slow_call\""));
  EXPECT_NE(std::string::npos, bundle.find("\"p99_seconds\":"));
  EXPECT_NE(std::string::npos, bundle.find("\"factor\":3"));
}

TEST_F(ForensicsTest, ManualCaptureBypassesRateLimitAndNeedsNoDisk) {
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  run_square(ctx, 64, 4);
  // Two manual captures inside one rate-limit interval: both must land
  // (the limit only applies to automatic triggers), and with no
  // forensics dir configured the bundle lives in memory only.
  EXPECT_EQ(0, ag::obs::telemetry_forensics_capture());
  EXPECT_EQ(0, ag::obs::telemetry_forensics_capture());
  const ForensicsStats s = ag::obs::forensics_stats();
  EXPECT_EQ(2u, s.captures[kManual]);
  EXPECT_EQ(0u, s.suppressed);
  EXPECT_EQ(0u, s.written);
  EXPECT_TRUE(s.last_path.empty());
  EXPECT_NE(std::string::npos,
            ag::obs::forensics_last_bundle_json().find("\"reason\":\"manual\""));
}

TEST_F(ForensicsTest, ConcurrentSlowCallsElectExactlyOneCapture) {
  const std::string dir = make_bundle_dir("concurrent");
  ag::set_forensics_dir(dir);
  constexpr int kThreads = 4;

  // Slow-call state is per recording lane, so each thread warms its own
  // lane, then all release their pathological call together: the CAS on
  // the rate-limit clock must elect exactly one bundle, the rest count
  // as suppressed. Readers hammer the snapshot paths meanwhile (the
  // interesting TSan surface: capture vs stats vs last-bundle).
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ag::Context ctx(ag::KernelShape{8, 6}, 1);
      run_square(ctx, 48, 150, 100 + static_cast<unsigned>(t));
      ag::Context slow_ctx = pathological_context();
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // First iteration is the barrier-released race; the bounded
      // retries absorb marginal detections under sanitizer jitter (see
      // the rate-limit test above) without crossing the p99 refresh.
      // Two detections anywhere are enough to exercise the election.
      for (int i = 0; i < 12; ++i) {
        run_square(slow_ctx, 96, 1, 200 + static_cast<unsigned>(t * 16 + i));
        if (ag::obs::forensics_stats().slow_calls >= 2) break;
      }
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  ag::set_slow_call_factor(3.0);
  go.store(true, std::memory_order_release);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)ag::obs::forensics_stats();
      (void)ag::obs::forensics_last_bundle_json();
      (void)ag::obs::forensics_summary_json();
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  ag::set_slow_call_factor(0.0);

  const ForensicsStats s = ag::obs::forensics_stats();
  EXPECT_GE(s.slow_calls, 2u);
  EXPECT_EQ(1u, s.captures[kSlowCall]);
  // Every detection either won the CAS-claimed clock or was suppressed:
  // the accounting must balance exactly, with exactly one winner.
  EXPECT_EQ(s.slow_calls, s.captures[kSlowCall] + s.suppressed);
  EXPECT_EQ(1u, s.written);
}

TEST(ForensicsStatsOff, CompiledOutBuildIsInert) {
  if (ag::obs::stats_compiled_in) GTEST_SKIP() << "stats compiled in";
  EXPECT_EQ(-1, ag::obs::telemetry_forensics_capture());
  const ForensicsStats s = ag::obs::forensics_stats();
  EXPECT_EQ(0u, s.total_captures());
  EXPECT_EQ(0u, s.written);
  EXPECT_TRUE(ag::obs::forensics_last_bundle_json().empty());
}

}  // namespace
