// Load scheduling (Eq. 13 / Figure 7): loads are placed in distinct gaps,
// never before the overwritten value's last read, and the bottleneck RAW
// distance is maximised. The paper's instruction-order experiments found
// loaded registers usable after >= 4 fmlas; the scheduled kernel must
// respect that with room to spare.
#include <gtest/gtest.h>

#include "common/check.hpp"

#include <set>

#include "isa/rotation.hpp"
#include "isa/scheduler.hpp"

using ag::isa::identity_rotation;
using ag::isa::make_read_schedule;
using ag::isa::schedule_loads;
using ag::isa::SchedulePlan;
using ag::isa::solve_rotation;

TEST(SchedulerTest, RotatedKernelHasLargeRawDistance) {
  const auto rotation = solve_rotation({8, 6}, 8);
  const SchedulePlan plan = schedule_loads(rotation);
  // The paper's scheduling found distance 9 (in its instruction
  // numbering); our bottleneck-optimal placement in fmla units must give
  // at least the >= 4-fmla RAW requirement with margin.
  EXPECT_GE(plan.min_raw_distance, 4);
  EXPECT_GE(plan.min_war_slack, 0);
}

TEST(SchedulerTest, OneLoadPerGap) {
  const auto rotation = solve_rotation({8, 6}, 8);
  const SchedulePlan plan = schedule_loads(rotation);
  for (const auto& copy : plan.copies) {
    std::set<int> gaps;
    for (const auto& l : copy.loads) {
      EXPECT_TRUE(gaps.insert(l.gap).second) << "two loads share gap " << l.gap;
      EXPECT_GE(l.gap, 0);
      EXPECT_LT(l.gap, 24);
    }
    EXPECT_EQ(copy.loads.size(), 7u);  // (8 + 6) / 2 loads per copy
  }
}

TEST(SchedulerTest, LoadsNeverPrecedeLastRead) {
  const auto rotation = solve_rotation({8, 6}, 8);
  const auto sched = make_read_schedule({8, 6});
  const SchedulePlan plan = schedule_loads(rotation);
  for (int copy = 0; copy < rotation.unroll; ++copy) {
    const auto& cur = rotation.table[static_cast<std::size_t>(copy)];
    for (const auto& l : plan.copies[static_cast<std::size_t>(copy)].loads) {
      for (int role = 0; role < rotation.num_roles; ++role) {
        if (cur[role] == l.reg)
          EXPECT_GT(l.raw_gap, sched.last_read[role])
              << "load overwrites role " << role << " before its last read";
      }
    }
  }
}

TEST(SchedulerTest, RawDistanceConsistent) {
  const auto rotation = solve_rotation({8, 6}, 8);
  const auto sched = make_read_schedule({8, 6});
  const SchedulePlan plan = schedule_loads(rotation);
  for (const auto& copy : plan.copies) {
    for (const auto& l : copy.loads) {
      const int need = sched.fmla_count + sched.first_read[l.target_role];
      EXPECT_EQ(l.raw_distance_fmla, need - l.raw_gap);
      EXPECT_EQ(l.gap, l.raw_gap % sched.fmla_count);
      EXPECT_GE(l.raw_distance_fmla, plan.min_raw_distance);
    }
  }
}

TEST(SchedulerTest, RotationImprovesSchedulingFreedom) {
  const auto rotated = schedule_loads(solve_rotation({8, 6}, 8));
  const auto fixed = schedule_loads(identity_rotation({8, 6}, 8, 8));
  EXPECT_GE(rotated.min_raw_distance, fixed.min_raw_distance);
}

TEST(SchedulerTest, AllShapesSchedulable) {
  for (ag::KernelShape s : {ag::KernelShape{8, 6}, {8, 4}, {4, 4}, {6, 8}}) {
    const auto rotation = solve_rotation(s, 32 - s.mr * s.nr / 2);
    const SchedulePlan plan = schedule_loads(rotation);
    EXPECT_GE(plan.min_raw_distance, 1) << s.to_string();
    for (const auto& copy : plan.copies)
      EXPECT_EQ(static_cast<int>(copy.loads.size()), (s.mr + s.nr) / 2) << s.to_string();
  }
}
