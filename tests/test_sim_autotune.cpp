// Auto-tuner tests (future-work extension): the tuner's winner is at
// least as good as the analytic solution under the model's own objective,
// the analytic solution ranks near the top, and option plumbing works.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "model/machine.hpp"
#include "sim/autotune.hpp"

using ag::sim::autotune_block_sizes;
using ag::sim::TuneOptions;

namespace {
TuneOptions quick_options() {
  TuneOptions o;
  o.sizes = {1024, 3072};
  o.kc_candidates = {256, 384, 512, 640};
  o.mc_candidates = {24, 40, 56, 72, 96};
  o.nc_candidates = {1280, 1792, 1920, 2048};
  return o;
}
}  // namespace

TEST(AutotuneTest, WinnerBeatsOrMatchesAnalytic) {
  const auto r = autotune_block_sizes(ag::model::xgene(), {8, 6}, 1, quick_options());
  EXPECT_GE(r.best.avg_efficiency, r.analytic.avg_efficiency - 1e-9);
  EXPECT_EQ(r.evaluated, 4 * 5 * 4);
}

TEST(AutotuneTest, AnalyticSolutionIsNearOptimal) {
  // The paper's central claim: the Eqs. (15)-(20) solution needs no
  // tuning. The tuned optimum must not beat it by more than 2 points.
  const auto r = autotune_block_sizes(ag::model::xgene(), {8, 6}, 1, quick_options());
  EXPECT_LT(r.best.avg_efficiency - r.analytic.avg_efficiency, 0.02);
}

TEST(AutotuneTest, TopListSortedAndSized) {
  const auto r = autotune_block_sizes(ag::model::xgene(), {8, 6}, 1, quick_options());
  ASSERT_LE(r.top.size(), 10u);
  ASSERT_GE(r.top.size(), 2u);
  for (std::size_t i = 1; i < r.top.size(); ++i)
    EXPECT_GE(r.top[i - 1].avg_efficiency, r.top[i].avg_efficiency);
  EXPECT_EQ(r.top.front().avg_efficiency, r.best.avg_efficiency);
}

TEST(AutotuneTest, McCandidatesRoundedToMr) {
  TuneOptions o = quick_options();
  o.mc_candidates = {30, 58};  // not multiples of 8
  const auto r = autotune_block_sizes(ag::model::xgene(), {8, 6}, 1, o);
  for (const auto& c : r.top) EXPECT_EQ(c.blocks.mc % 8, 0);
}

TEST(AutotuneTest, ThreadedTuningShrinksMc) {
  // With eight threads the shared-L2 penalty pushes the tuned mc down,
  // as the paper's Eq. (19) predicts analytically.
  TuneOptions o = quick_options();
  const auto r1 = autotune_block_sizes(ag::model::xgene(), {8, 6}, 1, o);
  const auto r8 = autotune_block_sizes(ag::model::xgene(), {8, 6}, 8, o);
  EXPECT_LE(r8.best.blocks.mc, r1.best.blocks.mc);
}

TEST(AutotuneTest, DefaultGridsNonEmpty) {
  TuneOptions o;
  o.sizes = {2048};
  const auto r = autotune_block_sizes(ag::model::xgene(), {8, 6}, 1, o);
  EXPECT_GT(r.evaluated, 100);
}

TEST(AutotuneTest, RequiresSizes) {
  TuneOptions o;
  o.sizes.clear();
  EXPECT_THROW(autotune_block_sizes(ag::model::xgene(), {8, 6}, 1, o),
               ag::InvalidArgument);
}
