// Heterogeneity-weighted ticket partitioning: proportional_spans()
// apportionment arithmetic, the invariance of the block grid under
// weighting, and the bitwise-determinism contract of the parallel driver
// when an emulated big.LITTLE topology is active — weighting may only
// change WHO claims WHICH ticket, never what any ticket computes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/matrix.hpp"
#include "core/gemm.hpp"
#include "core/schedule.hpp"
#include "scoped_knobs.hpp"
#include "threading/thread_pool.hpp"

using ag::index_t;
using ag::PanelSchedule;

namespace {

// Every span sequence must tile [0, total) contiguously in rank order.
void expect_exact_cover(const std::vector<PanelSchedule::TicketSpan>& spans,
                        index_t total) {
  index_t at = 0;
  for (std::size_t r = 0; r < spans.size(); ++r) {
    SCOPED_TRACE(r);
    EXPECT_EQ(spans[r].begin, at);
    EXPECT_LE(spans[r].begin, spans[r].end);
    at = spans[r].end;
  }
  EXPECT_EQ(at, total);
}

TEST(ProportionalSpans, SizesTrackWeights) {
  const auto spans = PanelSchedule::proportional_spans(100, {2.0, 1.0, 1.0});
  ASSERT_EQ(spans.size(), 3u);
  expect_exact_cover(spans, 100);
  EXPECT_EQ(spans[0].size(), 50);
  EXPECT_EQ(spans[1].size(), 25);
  EXPECT_EQ(spans[2].size(), 25);
}

TEST(ProportionalSpans, LargestRemainderBreaksTiesToLowerRanks) {
  // 10 tickets over 3 equal weights: floor shares 3+3+3, the leftover
  // ticket goes to the lowest rank.
  const auto spans = PanelSchedule::proportional_spans(10, {1.0, 1.0, 1.0});
  expect_exact_cover(spans, 10);
  EXPECT_EQ(spans[0].size(), 4);
  EXPECT_EQ(spans[1].size(), 3);
  EXPECT_EQ(spans[2].size(), 3);
}

TEST(ProportionalSpans, ZeroWeightRankGetsAnEmptySpan) {
  const auto spans = PanelSchedule::proportional_spans(99, {2.0, 0.0, 1.0});
  ASSERT_EQ(spans.size(), 3u);
  expect_exact_cover(spans, 99);
  EXPECT_EQ(spans[1].size(), 0);
  EXPECT_EQ(spans[0].size(), 66);
  EXPECT_EQ(spans[2].size(), 33);
}

TEST(ProportionalSpans, DegenerateWeightsReduceToEqualPartition) {
  // All-equal and all-zero weights must both reproduce the unweighted
  // schedule bit-for-bit: partition_range(total, n, r, 1).
  for (const std::vector<double> weights :
       {std::vector<double>{1.0, 1.0, 1.0, 1.0}, std::vector<double>{0.0, 0.0, 0.0, 0.0},
        std::vector<double>{0.7, 0.7, 0.7, 0.7}}) {
    for (index_t total : {0, 1, 3, 4, 7, 64, 1000}) {
      SCOPED_TRACE(total);
      const auto spans = PanelSchedule::proportional_spans(total, weights);
      ASSERT_EQ(spans.size(), weights.size());
      expect_exact_cover(spans, total);
      for (int r = 0; r < 4; ++r) {
        SCOPED_TRACE(r);
        const ag::Range want = ag::partition_range(total, 4, r, 1);
        EXPECT_EQ(spans[static_cast<std::size_t>(r)].begin, want.begin);
        EXPECT_EQ(spans[static_cast<std::size_t>(r)].end, want.end);
      }
    }
  }
}

TEST(ProportionalSpans, ExtremeRatiosStillCoverEveryTicket) {
  for (index_t total : {1, 2, 5, 17, 101}) {
    SCOPED_TRACE(total);
    expect_exact_cover(PanelSchedule::proportional_spans(total, {1000.0, 1.0}), total);
    expect_exact_cover(PanelSchedule::proportional_spans(total, {1e-6, 1.0, 1e-6}),
                       total);
  }
}

TEST(ProportionalSpans, DeterministicForGivenInputs) {
  const std::vector<double> w = {1.0, 0.83, 0.83, 0.41};
  const auto a = PanelSchedule::proportional_spans(137, w);
  const auto b = PanelSchedule::proportional_spans(137, w);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].begin, b[r].begin);
    EXPECT_EQ(a[r].end, b[r].end);
  }
}

TEST(WeightedSchedule, BlockGridIsInvariantUnderTopology) {
  // The determinism contract rests on the grid being a function of
  // (m, nc, mc, nr, nthreads) only. Build the same PanelSchedule with and
  // without an asymmetric topology active: identical tickets and blocks,
  // all (mc, nr)-aligned.
  const index_t m = 200, nc = 96, mc = 32;
  const int nr = 6, nthreads = 4;
  PanelSchedule flat(m, nc, mc, nr, nthreads);
  std::vector<ag::GemmBlock> blocks;
  for (index_t t = 0; t < flat.total_blocks(); ++t) blocks.push_back(flat.block(t));

  agtest::ScopedCpuClasses topo("2x2.0,2x1.0");
  PanelSchedule skewed(m, nc, mc, nr, nthreads);
  ASSERT_EQ(skewed.total_blocks(), flat.total_blocks());
  for (index_t t = 0; t < skewed.total_blocks(); ++t) {
    SCOPED_TRACE(t);
    const ag::GemmBlock b = skewed.block(t);
    EXPECT_EQ(b.ii, blocks[static_cast<std::size_t>(t)].ii);
    EXPECT_EQ(b.mc, blocks[static_cast<std::size_t>(t)].mc);
    EXPECT_EQ(b.jb, blocks[static_cast<std::size_t>(t)].jb);
    EXPECT_EQ(b.nb, blocks[static_cast<std::size_t>(t)].nb);
    EXPECT_EQ(b.ii % mc, 0);
    EXPECT_EQ(b.jb % nr, 0);
  }
}

ag::BlockSizes pinned_blocks() {
  ag::BlockSizes bs;
  bs.mr = 8;
  bs.nr = 6;
  bs.kc = 32;
  bs.mc = 32;
  bs.nc = 48;
  return bs;
}

std::vector<double> run_once(int threads, index_t m, index_t n, index_t k,
                             const ag::Matrix<double>& a, const ag::Matrix<double>& b,
                             const ag::Matrix<double>& c0) {
  ag::Context ctx(ag::KernelShape{8, 6}, threads);
  ctx.set_block_sizes(pinned_blocks());
  ag::Matrix<double> c(c0);
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.25,
            a.data(), a.ld(), b.data(), b.ld(), 0.5, c.data(), c.ld(), ctx);
  std::vector<double> out(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    std::memcpy(out.data() + j * m, c.data() + j * c.ld(),
                static_cast<std::size_t>(m) * sizeof(double));
  return out;
}

TEST(WeightedSchedule, BitwiseDeterministicOnEmulatedBigLittle) {
  // The full driver under an emulated 2+2 big.LITTLE at 2:1, with
  // weighted claiming on: every thread count and every rep must match
  // the serial result bit for bit (same grid, same per-tile accumulation
  // order; weighting only changed the claim order).
  const index_t m = 200, n = 96, k = 80;
  agtest::ScopedSmallMnk pack_path(0);
  agtest::ScopedCpuClasses topo("2x2.0,2x1.0");
  agtest::ScopedWeightedSchedule weighted(true);
  const auto a = ag::random_matrix(m, k, 301);
  const auto b = ag::random_matrix(k, n, 302);
  const auto c0 = ag::random_matrix(m, n, 303);

  const std::vector<double> golden = run_once(1, m, n, k, a, b, c0);
  const std::size_t bytes = golden.size() * sizeof(double);
  for (int threads : {1, 2, 4, 8}) {
    for (int rep = 0; rep < 10; ++rep) {
      const std::vector<double> got = run_once(threads, m, n, k, a, b, c0);
      ASSERT_EQ(std::memcmp(got.data(), golden.data(), bytes), 0)
          << "threads=" << threads << " rep=" << rep;
    }
  }

  // And switching weighting off changes nothing about the value either.
  agtest::ScopedWeightedSchedule unweighted(false);
  const std::vector<double> plain = run_once(4, m, n, k, a, b, c0);
  ASSERT_EQ(std::memcmp(plain.data(), golden.data(), bytes), 0);
}

}  // namespace
