// Packing layout tests (Figure 3): packed A slivers are column
// sub-slivers of mr contiguous elements, packed B slivers are row
// sub-slivers of nr contiguous elements, edges are zero-padded, transposed
// sources pack identically to their explicit transposes, and packing is a
// permutation of the source (every source element appears exactly once).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/matrix.hpp"
#include "core/packing.hpp"

using ag::index_t;
using ag::Matrix;
using ag::Trans;

namespace {

TEST(PackedSizes, RoundUpToSliverMultiples) {
  EXPECT_EQ(ag::packed_a_size(56, 512, 8), 56 * 512);
  EXPECT_EQ(ag::packed_a_size(57, 512, 8), 64 * 512);
  EXPECT_EQ(ag::packed_b_size(512, 1920, 6), 512 * 1920);
  EXPECT_EQ(ag::packed_b_size(512, 1921, 6), 512 * 1926);
}

TEST(PackA, LayoutNoTrans) {
  // A 6x3, mr=4: two slivers (rows 0-3, rows 4-5 padded to 4).
  Matrix<double> a(6, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 6; ++i) a(i, j) = static_cast<double>(100 * i + j);
  std::vector<double> dst(static_cast<std::size_t>(ag::packed_a_size(6, 3, 4)), -1.0);
  ag::pack_a(Trans::NoTrans, a.data(), a.ld(), 0, 0, 6, 3, 4, dst.data());
  // Sliver 0, k-step p: elements A(0..3, p) contiguous.
  for (index_t p = 0; p < 3; ++p)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_EQ(dst[static_cast<std::size_t>(p * 4 + i)], a(i, p));
  // Sliver 1: rows 4,5 then zero padding.
  for (index_t p = 0; p < 3; ++p) {
    const std::size_t base = static_cast<std::size_t>(3 * 4 + p * 4);
    EXPECT_EQ(dst[base + 0], a(4, p));
    EXPECT_EQ(dst[base + 1], a(5, p));
    EXPECT_EQ(dst[base + 2], 0.0);
    EXPECT_EQ(dst[base + 3], 0.0);
  }
}

TEST(PackA, TransEqualsExplicitTranspose) {
  auto a = ag::random_matrix(9, 7, 5);
  Matrix<double> at(7, 9);
  for (index_t i = 0; i < 9; ++i)
    for (index_t j = 0; j < 7; ++j) at(j, i) = a(i, j);
  // Pack op(A)=A^T (7x9 block starting at (1,2) of the op) both ways.
  const index_t mc = 5, kc = 6;
  std::vector<double> d1(static_cast<std::size_t>(ag::packed_a_size(mc, kc, 4)), -1);
  std::vector<double> d2 = d1;
  ag::pack_a(Trans::Trans, a.data(), a.ld(), 1, 2, mc, kc, 4, d1.data());
  ag::pack_a(Trans::NoTrans, at.data(), at.ld(), 1, 2, mc, kc, 4, d2.data());
  EXPECT_EQ(d1, d2);
}

TEST(PackB, LayoutNoTrans) {
  // B 3x5, nr=2: slivers of 2 columns; within a sliver each k-step holds
  // nr contiguous elements of one row.
  Matrix<double> b(3, 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 3; ++i) b(i, j) = static_cast<double>(10 * i + j);
  std::vector<double> dst(static_cast<std::size_t>(ag::packed_b_size(3, 5, 2)), -1.0);
  ag::pack_b(Trans::NoTrans, b.data(), b.ld(), 0, 0, 3, 5, 2, dst.data());
  // Sliver 0 (cols 0,1): p-th entry pair = B(p,0), B(p,1).
  for (index_t p = 0; p < 3; ++p) {
    EXPECT_EQ(dst[static_cast<std::size_t>(2 * p)], b(p, 0));
    EXPECT_EQ(dst[static_cast<std::size_t>(2 * p + 1)], b(p, 1));
  }
  // Last sliver (col 4 + padding).
  const std::size_t base = 2u * 2 * 3;
  for (index_t p = 0; p < 3; ++p) {
    EXPECT_EQ(dst[base + 2 * p], b(p, 4));
    EXPECT_EQ(dst[base + 2 * p + 1], 0.0);
  }
}

TEST(PackB, TransEqualsExplicitTranspose) {
  auto b = ag::random_matrix(8, 6, 23);
  Matrix<double> bt(6, 8);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 6; ++j) bt(j, i) = b(i, j);
  const index_t kc = 5, nc = 7;
  std::vector<double> d1(static_cast<std::size_t>(ag::packed_b_size(kc, nc, 6)), -1);
  std::vector<double> d2 = d1;
  ag::pack_b(Trans::Trans, b.data(), b.ld(), 1, 0, kc, nc, 6, d1.data());
  ag::pack_b(Trans::NoTrans, bt.data(), bt.ld(), 1, 0, kc, nc, 6, d2.data());
  EXPECT_EQ(d1, d2);
}

TEST(PackB, SliverSubsetMatchesFullPack) {
  auto b = ag::random_matrix(40, 30, 31);
  const index_t kc = 16, nc = 25;
  const int nr = 6;
  const index_t slivers = ag::ceil_div<index_t>(nc, nr);
  std::vector<double> full(static_cast<std::size_t>(ag::packed_b_size(kc, nc, nr)), -1);
  std::vector<double> parts = full;
  ag::pack_b(Trans::NoTrans, b.data(), b.ld(), 3, 2, kc, nc, nr, full.data());
  // Pack in three chunks, as cooperating threads do.
  ag::pack_b_slivers(Trans::NoTrans, b.data(), b.ld(), 3, 2, kc, nc, nr, 0, 2, parts.data());
  ag::pack_b_slivers(Trans::NoTrans, b.data(), b.ld(), 3, 2, kc, nc, nr, 2, 3, parts.data());
  ag::pack_b_slivers(Trans::NoTrans, b.data(), b.ld(), 3, 2, kc, nc, nr, 3, slivers,
                     parts.data());
  EXPECT_EQ(full, parts);
}

// Property: packing is a permutation plus zero padding — every source
// element of the block appears exactly once.
struct PackCase {
  index_t mc, kc;
  int mr;
};
class PackAPermutation : public ::testing::TestWithParam<PackCase> {};

TEST_P(PackAPermutation, EveryElementOnce) {
  const auto [mc, kc, mr] = GetParam();
  Matrix<double> a(mc + 3, kc + 2);
  // Unique values to make multiset comparison exact.
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      a(i, j) = static_cast<double>(i * 1000 + j) + 0.5;
  std::vector<double> dst(static_cast<std::size_t>(ag::packed_a_size(mc, kc, mr)), -1);
  ag::pack_a(Trans::NoTrans, a.data(), a.ld(), 2, 1, mc, kc, mr, dst.data());
  std::map<double, int> counts;
  for (double v : dst) ++counts[v];
  index_t zeros_expected = (ag::round_up(mc, static_cast<index_t>(mr)) - mc) * kc;
  EXPECT_EQ(counts[0.0], zeros_expected);
  for (index_t j = 0; j < kc; ++j)
    for (index_t i = 0; i < mc; ++i)
      EXPECT_EQ(counts[a(2 + i, 1 + j)], 1) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(Shapes, PackAPermutation,
                         ::testing::Values(PackCase{8, 8, 8}, PackCase{9, 5, 8},
                                           PackCase{23, 7, 4}, PackCase{5, 12, 6},
                                           PackCase{1, 1, 8}));

}  // namespace
