// Correctness of the batched driver (core/gemm_batch.hpp) against the
// reference oracle: uniform, ragged and strided batches, alpha/beta edge
// cases (including beta = 0 over NaN garbage), degenerate batch sizes,
// row-major normalization and shared-B panel reuse. Every test runs the
// whole batch through the persistent pool, so these double as smoke tests
// of the scheduler's submit/help/complete path.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/compare.hpp"
#include "blas/gemm_types.hpp"
#include "blas/reference_gemm.hpp"
#include "capi/armgemm_cblas.h"
#include "common/matrix.hpp"
#include "core/context.hpp"
#include "core/gemm_batch.hpp"
#include "scoped_knobs.hpp"

using ag::index_t;
using ag::Matrix;

namespace {

struct Problem {
  Matrix<double> a, b, c, c0;
  ag::GemmBatchEntry entry;
};

Problem make_problem(ag::Trans ta, ag::Trans tb, index_t m, index_t n, index_t k,
                     double alpha, double beta, std::uint64_t seed) {
  Problem p{ag::random_matrix(ta == ag::Trans::NoTrans ? m : k,
                              ta == ag::Trans::NoTrans ? k : m, seed),
            ag::random_matrix(tb == ag::Trans::NoTrans ? k : n,
                              tb == ag::Trans::NoTrans ? n : k, seed + 1),
            ag::random_matrix(m, n, seed + 2), Matrix<double>(0, 0), {}};
  p.c0 = p.c;
  p.entry.trans_a = ta;
  p.entry.trans_b = tb;
  p.entry.m = m;
  p.entry.n = n;
  p.entry.k = k;
  p.entry.alpha = alpha;
  p.entry.beta = beta;
  // Degenerate operands (k = 0) have zero stored rows; BLAS still
  // requires ld >= 1.
  p.entry.a = p.a.data();
  p.entry.lda = std::max<index_t>(1, p.a.ld());
  p.entry.b = p.b.data();
  p.entry.ldb = std::max<index_t>(1, p.b.ld());
  p.entry.c = p.c.data();
  p.entry.ldc = p.c.ld();
  return p;
}

void verify(const Problem& p) {
  const ag::GemmBatchEntry& e = p.entry;
  Matrix<double> expect(p.c0);
  ag::reference_dgemm(ag::Layout::ColMajor, e.trans_a, e.trans_b, e.m, e.n, e.k, e.alpha,
                      e.a, e.lda, e.b, e.ldb, e.beta, expect.data(), expect.ld());
  const auto cmp = ag::compare_gemm_result(p.c.view(), expect.view(), e.k, e.alpha, 1.0, 1.0,
                                           e.beta, 1.0);
  EXPECT_TRUE(cmp.ok) << e.m << "x" << e.n << "x" << e.k << " alpha=" << e.alpha
                      << " beta=" << e.beta << " diff " << cmp.max_diff;
}

void run_batch(std::vector<Problem>& problems, int threads = 3) {
  std::vector<ag::GemmBatchEntry> entries;
  for (const Problem& p : problems) entries.push_back(p.entry);
  ag::Context ctx(ag::KernelShape{8, 6}, threads);
  ag::dgemm_batch(ag::Layout::ColMajor, entries.data(),
                  static_cast<index_t>(entries.size()), ctx);
}

TEST(GemmBatch, UniformBatchMatchesReference) {
  std::vector<Problem> problems;
  for (int i = 0; i < 8; ++i)
    problems.push_back(make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 96, 80, 64, 1.0,
                                    1.0, 100 + 10 * static_cast<std::uint64_t>(i)));
  run_batch(problems);
  for (const Problem& p : problems) verify(p);
}

TEST(GemmBatch, RaggedShapesTransposesAndScalars) {
  // Mixed per-entry shapes, transposes and scalars in one submission:
  // small fast-path entries, blocked entries and scale-only entries all
  // mixed in one ticket queue.
  std::vector<Problem> problems;
  problems.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 150, 90, 70, 1.25, 0.5, 500));
  problems.push_back(make_problem(ag::Trans::Trans, ag::Trans::NoTrans, 64, 64, 64, -0.75,
                                  1.0, 510));
  problems.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::Trans, 33, 17, 129, 2.0, -1.0, 520));
  problems.push_back(
      make_problem(ag::Trans::Trans, ag::Trans::Trans, 8, 8, 8, 1.0, 0.0, 530));
  problems.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 1, 200, 40, 1.0, 2.0, 540));
  problems.push_back(  // alpha = 0: beta-scale only
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 60, 60, 60, 0.0, 0.25, 550));
  problems.push_back(  // k = 0: beta-scale only
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 40, 30, 0, 1.0, 0.75, 560));
  run_batch(problems);
  for (const Problem& p : problems) verify(p);
}

TEST(GemmBatch, BetaZeroOverwritesNanGarbage) {
  // beta = 0 must overwrite C, never multiply it: NaN/Inf garbage in the
  // output buffer must not survive, on the small, blocked and scale paths.
  std::vector<Problem> problems;
  problems.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 120, 72, 48, 1.0, 0.0, 600));
  problems.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 12, 10, 8, 1.0, 0.0, 610));
  problems.push_back(  // alpha = 0 && beta = 0: pure overwrite with zeros
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 50, 40, 30, 0.0, 0.0, 620));
  for (Problem& p : problems) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (index_t j = 0; j < p.c.cols(); ++j)
      for (index_t i = 0; i < p.c.rows(); ++i)
        p.c(i, j) = (i + j) % 3 ? nan : std::numeric_limits<double>::infinity();
    p.c0 = p.c;
  }
  run_batch(problems);
  for (const Problem& p : problems) {
    for (index_t j = 0; j < p.c.cols(); ++j)
      for (index_t i = 0; i < p.c.rows(); ++i)
        ASSERT_TRUE(std::isfinite(p.c(i, j))) << "NaN survived at " << i << "," << j;
    verify(p);
  }
}

TEST(GemmBatch, DegenerateBatchSizes) {
  // count = 0 is a no-op (entries pointer may even be null).
  ag::Context ctx(ag::KernelShape{8, 6}, 2);
  ag::dgemm_batch(ag::Layout::ColMajor, nullptr, 0, ctx);

  // count = 1 behaves exactly like one dgemm.
  std::vector<Problem> one;
  one.push_back(make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 100, 60, 52, 1.5, 0.5,
                             700));
  run_batch(one);
  verify(one[0]);

  // m = 0 / n = 0 entries are skipped without touching C.
  std::vector<Problem> degenerate;
  degenerate.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 30, 20, 10, 1.0, 0.5, 710));
  degenerate[0].entry.m = 0;
  run_batch(degenerate);
  for (index_t j = 0; j < degenerate[0].c.cols(); ++j)
    for (index_t i = 0; i < degenerate[0].c.rows(); ++i)
      ASSERT_EQ(degenerate[0].c(i, j), degenerate[0].c0(i, j));
}

TEST(GemmBatch, HugeBatchOfTinyEntries) {
  // 256 tiny entries: all take the no-pack fast path; exercises queue
  // round-robin across shards and (under a small ARMGEMM_QUEUE_DEPTH)
  // the inline-overflow backpressure path.
  agtest::ScopedQueueDepth depth(16);
  std::vector<Problem> problems;
  for (int i = 0; i < 256; ++i)
    problems.push_back(make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 8, 6, 4, 1.0,
                                    1.0, 1000 + 10 * static_cast<std::uint64_t>(i)));
  run_batch(problems, 4);
  for (const Problem& p : problems) verify(p);
}

TEST(GemmBatch, RowMajorNormalization) {
  // Row-major entries go through the swap normalization; check against
  // the row-major reference directly. Matrix<> is column-major, so build
  // the row-major operands as flat vectors with explicit leading dims.
  const index_t m = 70, n = 50, k = 40;
  std::vector<double> a(static_cast<std::size_t>(m) * k), b(static_cast<std::size_t>(k) * n),
      c(static_cast<std::size_t>(m) * n), c0;
  ag::Xoshiro256 rng(4242);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  for (double& v : c) v = rng.uniform(-1.0, 1.0);
  c0 = c;

  ag::GemmBatchEntry e;
  e.m = m;
  e.n = n;
  e.k = k;
  e.alpha = 1.5;
  e.beta = -0.5;
  e.a = a.data();
  e.lda = k;  // row-major: lda is the row length of A (m x k)
  e.b = b.data();
  e.ldb = n;
  e.c = c.data();
  e.ldc = n;
  ag::Context ctx(ag::KernelShape{8, 6}, 2);
  ag::dgemm_batch(ag::Layout::RowMajor, &e, 1, ctx);

  ag::reference_dgemm(ag::Layout::RowMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k,
                      e.alpha, a.data(), e.lda, b.data(), e.ldb, e.beta, c0.data(), e.ldc);
  const ag::MatrixView<const double> got(c.data(), n, m, n);  // col-major reinterpretation
  const ag::MatrixView<const double> want(c0.data(), n, m, n);
  const auto cmp = ag::compare_gemm_result(got, want, k, e.alpha, 1.0, 1.0, e.beta, 1.0);
  EXPECT_TRUE(cmp.ok) << "row-major diff " << cmp.max_diff;
}

TEST(GemmBatch, SharedBAcrossEntries) {
  // The serving pattern: one B (weights) against many A panels. All
  // entries share B bytes, so blocked tickets reuse cached panels.
  const index_t m = 64, n = 96, k = 72;
  const auto b = ag::random_matrix(k, n, 2000);
  std::vector<Problem> problems;
  for (int i = 0; i < 6; ++i) {
    problems.push_back(make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.0,
                                    0.0, 2010 + 10 * static_cast<std::uint64_t>(i)));
    problems.back().entry.b = b.data();
    problems.back().entry.ldb = b.ld();
  }
  run_batch(problems, 4);
  for (Problem& p : problems) {
    p.b = Matrix<double>(b);  // point verify() at the shared B
    p.entry.b = p.b.data();
    p.entry.ldb = p.b.ld();
    verify(p);
  }
}

TEST(GemmBatch, StridedBatchMatchesLoopOfEntries) {
  const index_t m = 48, n = 40, k = 36, count = 10;
  const index_t stride_a = m * k, stride_b = 0, stride_c = m * n;  // shared B
  std::vector<double> a(static_cast<std::size_t>(stride_a * count));
  std::vector<double> b(static_cast<std::size_t>(k) * n);
  std::vector<double> c(static_cast<std::size_t>(stride_c * count)), c0;
  ag::Xoshiro256 rng(3000);
  for (double& v : a) v = rng.uniform(-1.0, 1.0);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  for (double& v : c) v = rng.uniform(-1.0, 1.0);
  c0 = c;

  ag::Context ctx(ag::KernelShape{8, 6}, 3);
  ag::dgemm_strided_batch(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n,
                          k, 1.25, a.data(), m, stride_a, b.data(), k, stride_b, 0.5,
                          c.data(), m, stride_c, count, ctx);

  for (index_t i = 0; i < count; ++i) {
    ag::reference_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, m, n,
                        k, 1.25, a.data() + i * stride_a, m, b.data(), k, 0.5,
                        c0.data() + i * stride_c, m);
    const ag::MatrixView<const double> got(c.data() + i * stride_c, m, n, m);
    const ag::MatrixView<const double> want(c0.data() + i * stride_c, m, n, m);
    const auto cmp = ag::compare_gemm_result(got, want, k, 1.25, 1.0, 1.0, 0.5, 1.0);
    EXPECT_TRUE(cmp.ok) << "entry " << i << " diff " << cmp.max_diff;
  }
}

TEST(GemmBatch, StridedBatchRejectsOverlappingC) {
  const index_t m = 16, n = 16, k = 16;
  std::vector<double> a(m * k, 1.0), b(k * n, 1.0), c(m * n * 2, 0.0);
  ag::Context ctx(ag::KernelShape{8, 6}, 1);
  EXPECT_THROW(ag::dgemm_strided_batch(ag::Layout::ColMajor, ag::Trans::NoTrans,
                                       ag::Trans::NoTrans, m, n, k, 1.0, a.data(), m, 0,
                                       b.data(), k, 0, 0.0, c.data(), m, m * n - 1, 2, ctx),
               ag::InvalidArgument);
}

TEST(GemmBatch, BadEntryFailsWholeBatchBeforeTouchingC) {
  // Entry 1 has lda < m; validation runs before any work is enqueued, so
  // entry 0's (valid) C must still be untouched after the throw.
  std::vector<Problem> problems;
  problems.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 32, 24, 16, 1.0, 0.0, 4000));
  problems.push_back(
      make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, 32, 24, 16, 1.0, 0.0, 4010));
  problems[1].entry.lda = 1;  // invalid: lda < m for NoTrans
  std::vector<ag::GemmBatchEntry> entries{problems[0].entry, problems[1].entry};
  ag::Context ctx(ag::KernelShape{8, 6}, 2);
  EXPECT_THROW(ag::dgemm_batch(ag::Layout::ColMajor, entries.data(), 2, ctx),
               ag::InvalidArgument);
  for (index_t j = 0; j < problems[0].c.cols(); ++j)
    for (index_t i = 0; i < problems[0].c.rows(); ++i)
      ASSERT_EQ(problems[0].c(i, j), problems[0].c0(i, j));
}

TEST(GemmBatch, CapiBatchEntryPoints) {
  // armgemm_dgemm_batch and armgemm_dgemm_strided_batch round-trip the
  // CBLAS argument arrays into the same results as the C++ driver.
  const int threads_before = armgemm_get_num_threads();
  armgemm_set_num_threads(2);
  const index_t m = 40, n = 32, k = 24;
  std::vector<Problem> problems;
  for (int i = 0; i < 3; ++i)
    problems.push_back(make_problem(ag::Trans::NoTrans, ag::Trans::NoTrans, m, n, k, 1.0,
                                    1.0, 5000 + 10 * static_cast<std::uint64_t>(i)));

  std::vector<CBLAS_TRANSPOSE> ta(3, CblasNoTrans), tb(3, CblasNoTrans);
  std::vector<int64_t> ms(3, m), ns(3, n), ks(3, k);
  std::vector<double> alphas(3, 1.0), betas(3, 1.0);
  std::vector<const double*> as, bs;
  std::vector<double*> cs;
  std::vector<int64_t> ldas, ldbs, ldcs;
  for (Problem& p : problems) {
    as.push_back(p.a.data());
    ldas.push_back(p.a.ld());
    bs.push_back(p.b.data());
    ldbs.push_back(p.b.ld());
    cs.push_back(p.c.data());
    ldcs.push_back(p.c.ld());
  }
  armgemm_dgemm_batch(CblasColMajor, ta.data(), tb.data(), ms.data(), ns.data(), ks.data(),
                      alphas.data(), as.data(), ldas.data(), bs.data(), ldbs.data(),
                      betas.data(), cs.data(), ldcs.data(), 3);
  for (const Problem& p : problems) verify(p);
  armgemm_set_num_threads(threads_before);
}

TEST(GemmBatch, QueueKnobRoundTrip) {
  const long long depth_before = armgemm_get_queue_depth();
  const long long mb_before = armgemm_get_panel_cache_mb();
  armgemm_set_queue_depth(7);
  EXPECT_EQ(armgemm_get_queue_depth(), 7);
  armgemm_set_queue_depth(0);  // clamped to 1
  EXPECT_EQ(armgemm_get_queue_depth(), 1);
  armgemm_set_panel_cache_mb(3);
  EXPECT_EQ(armgemm_get_panel_cache_mb(), 3);
  armgemm_set_panel_cache_mb(-5);  // clamped to 0 (off)
  EXPECT_EQ(armgemm_get_panel_cache_mb(), 0);
  armgemm_set_queue_depth(depth_before);
  armgemm_set_panel_cache_mb(mb_before);
}

}  // namespace
