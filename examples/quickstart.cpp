// Quickstart: multiply two matrices with the optimized dgemm, validate
// against the reference, and time it.
//
//   ./quickstart [--size=N] [--threads=T] [--kernel=avx2_8x6]
#include <iostream>

#include "blas/compare.hpp"
#include "blas/reference_gemm.hpp"
#include "common/cli.hpp"
#include "common/matrix.hpp"
#include "common/timer.hpp"
#include "core/gemm.hpp"

int main(int argc, char** argv) {
  ag::CliArgs args(argc, argv);
  const ag::index_t n = args.get_int("size", 512);
  const int threads = static_cast<int>(args.get_int("threads", 1));

  // 1. Build an execution context: kernel shape + block sizes + threads.
  ag::Context ctx(ag::KernelShape{8, 6}, threads);
  if (args.has("kernel")) ctx.set_kernel(args.get("kernel", ""));
  std::cout << "dgemm " << n << " x " << n << " x " << n << " using kernel "
            << ctx.kernel().name << " (" << ag::to_string(ctx.kernel().isa) << "), "
            << threads << " thread(s), blocks " << ctx.block_sizes().to_string() << "\n";

  // 2. Fill operands (deterministic pseudo-random).
  auto a = ag::random_matrix(n, n, 1);
  auto b = ag::random_matrix(n, n, 2);
  auto c = ag::random_matrix(n, n, 3);
  ag::Matrix<double> c_ref(c);

  // 3. C := 1.0 * A*B + 1.0 * C.
  ag::Timer timer;
  ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, n, n, 1.0,
            a.data(), a.ld(), b.data(), b.ld(), 1.0, c.data(), c.ld(), ctx);
  const double seconds = timer.seconds();

  // 4. Validate against the reference implementation.
  ag::blocked_dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, n, n, 1.0,
                    a.data(), a.ld(), b.data(), b.ld(), 1.0, c_ref.data(), c_ref.ld());
  const auto cmp = ag::compare_gemm_result(c.view(), c_ref.view(), n, 1.0, 1.0, 1.0, 1.0, 1.0);

  std::cout << "time: " << seconds * 1e3 << " ms  ->  "
            << ag::gemm_gflops(static_cast<double>(n), static_cast<double>(n),
                               static_cast<double>(n), seconds)
            << " GFLOPS\n"
            << "max |diff| vs reference: " << cmp.max_diff << " (bound " << cmp.bound << ") "
            << (cmp.ok ? "OK" : "FAILED") << "\n";
  return cmp.ok ? 0 : 1;
}
