// Solve a dense linear system with the library's LAPACK-lite layer —
// the LINPACK-style workload the paper's introduction motivates (DGEMM is
// "the core of the LINPACK benchmark"): getrf's trailing updates run
// through the optimized dgemm, its panel solves through dtrsm.
//
//   ./lu_solver [--size=N] [--threads=T] [--block=NB]
#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/matrix.hpp"
#include "common/timer.hpp"
#include "core/gemm.hpp"
#include "lapack/lapack.hpp"

int main(int argc, char** argv) {
  using ag::index_t;
  ag::CliArgs args(argc, argv);
  const index_t n = args.get_int("size", 768);
  const index_t nb = args.get_int("block", 64);
  const int threads = static_cast<int>(args.get_int("threads", 1));
  ag::Context ctx(ag::KernelShape{8, 6}, threads);

  std::cout << "Blocked LU (getrf/getrs) of a " << n << " x " << n << " system, panel width "
            << nb << ", dgemm kernel " << ctx.kernel().name << ", " << threads
            << " thread(s)\n";

  auto a0 = ag::random_matrix(n, n, 42);
  for (index_t i = 0; i < n; ++i) a0(i, i) += static_cast<double>(n);  // well-conditioned
  std::vector<double> x_true(static_cast<std::size_t>(n));
  ag::Xoshiro256 rng(7);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) b[i] += a0(i, j) * x_true[j];

  ag::Matrix<double> a(a0);
  std::vector<index_t> ipiv;
  ag::Timer timer;
  const auto info = ag::getrf(n, n, a.data(), a.ld(), &ipiv, nb, ctx);
  const double t_factor = timer.seconds();
  if (info != 0) {
    std::cout << "FAILED: singular at column " << info << "\n";
    return 1;
  }
  ag::getrs(n, 1, a.data(), a.ld(), ipiv, b.data(), n, ctx);

  double err = 0;
  for (index_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(b[static_cast<std::size_t>(i)] - x_true[static_cast<std::size_t>(i)]));
  const double flops = 2.0 / 3.0 * static_cast<double>(n) * n * n;
  std::cout << "factorization: " << t_factor * 1e3 << " ms (" << flops / t_factor * 1e-9
            << " GFLOPS)\n"
            << "max |x - x_true| = " << err << "\n"
            << ((err < 1e-8 * static_cast<double>(n)) ? "OK\n" : "FAILED\n");
  return err < 1e-8 * static_cast<double>(n) ? 0 : 1;
}
