// Block-size advisor: apply the paper's analytic methodology (Sections
// IV-A/IV-B) to *any* cache geometry you describe on the command line,
// and print the derived register block, cache blocks, occupancies and
// prefetch distances — i.e. the paper's method as a reusable tool.
//
//   ./blocksize_advisor --l1=32768 --l1-assoc=4 --l2=262144 --l2-assoc=16 \
//                       --l3=8388608 --l3-assoc=16 --regs=32 --threads=8
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "model/cache_blocking.hpp"
#include "model/machine.hpp"
#include "model/perf_model.hpp"
#include "model/register_blocking.hpp"

int main(int argc, char** argv) {
  ag::CliArgs args(argc, argv);

  ag::model::MachineConfig m = ag::model::xgene();
  m.name = args.get("name", "custom (defaults = X-Gene)");
  m.l1d.size_bytes = args.get_int("l1", m.l1d.size_bytes);
  m.l1d.associativity = static_cast<int>(args.get_int("l1-assoc", m.l1d.associativity));
  m.l2.size_bytes = args.get_int("l2", m.l2.size_bytes);
  m.l2.associativity = static_cast<int>(args.get_int("l2-assoc", m.l2.associativity));
  m.l3.size_bytes = args.get_int("l3", m.l3.size_bytes);
  m.l3.associativity = static_cast<int>(args.get_int("l3-assoc", m.l3.associativity));
  m.regs.num_fp_registers = static_cast<int>(args.get_int("regs", m.regs.num_fp_registers));
  m.cores = static_cast<int>(args.get_int("cores", m.cores));
  m.cores_per_module = static_cast<int>(args.get_int("cores-per-module", m.cores_per_module));
  const int threads = static_cast<int>(args.get_int("threads", 1));

  std::cout << "Machine: " << m.name << "\n"
            << "  L1d " << m.l1d.size_bytes / 1024 << "K/" << m.l1d.associativity << "-way, L2 "
            << m.l2.size_bytes / 1024 << "K/" << m.l2.associativity << "-way (per "
            << m.cores_per_module << "-core module), L3 " << m.l3.size_bytes / 1024 << "K/"
            << m.l3.associativity << "-way, " << m.regs.num_fp_registers
            << " vector registers, " << threads << " thread(s)\n\n";

  // Step 1 (Section IV-A): register blocking from the register file.
  const auto reg = ag::model::solve_register_blocking(m);
  std::cout << "Register block (Eqs. 8-11): mr x nr = " << reg.mr << "x" << reg.nr
            << ", nrf = " << reg.nrf << ", gamma = " << ag::Table::fmt(reg.gamma, 3) << "\n";
  const auto budget = ag::model::register_budget(reg.mr, reg.nr, m);
  std::cout << "Register budget: " << budget.c_registers << " accumulators + "
            << budget.ab_registers << " A/B registers (of " << m.regs.num_fp_registers
            << ")\n\n";

  // Step 2 (Section IV-B/C): cache blocking from the hierarchy.
  const auto cb = ag::model::solve_cache_blocking(m, {reg.mr, reg.nr}, threads);
  std::cout << "Cache blocks (Eqs. 15,17-20): " << cb.blocks.to_string() << "\n"
            << "  B sliver occupies " << ag::Table::fmt_pct(cb.l1_fraction_b_sliver, 1)
            << " of L1 (k1=" << cb.k1 << ")\n"
            << "  A block(s) occupy " << ag::Table::fmt_pct(cb.l2_fraction_a_block, 1)
            << " of L2 (k2=" << cb.k2 << ")\n"
            << "  B panel occupies " << ag::Table::fmt_pct(cb.l3_fraction_b_panel, 1)
            << " of L3 (k3=" << cb.k3 << ")\n\n";

  const auto pf = ag::model::prefetch_distances(m, {reg.mr, reg.nr}, cb.blocks.kc);
  std::cout << "Prefetch distances: PREA = " << pf.prea_bytes << " B (A into L1), PREB = "
            << pf.preb_bytes << " B (next B sliver into L2)\n\n";

  // Step 3 (Section III): the layer gammas this configuration achieves.
  std::cout << "Compute-to-memory ratios: register kernel "
            << ag::Table::fmt(reg.gamma, 2) << ", GESS (Eq. 14) "
            << ag::Table::fmt(
                   ag::model::gamma_gess(reg.mr, reg.nr, cb.blocks.kc), 2)
            << ", GEBP (Eq. 16) "
            << ag::Table::fmt(
                   ag::model::gamma_gebp(reg.mr, reg.nr, cb.blocks.kc, cb.blocks.mc), 2)
            << "\n";
  return 0;
}
