// Batched GEMM under OpenMP: many independent small multiplications
// dispatched across host threads, each calling the (reentrant) serial
// dgemm with a shared read-only Context — the standard pattern for
// blocked tensor contractions and ML inference batches. Compiled with
// OpenMP when available; falls back to a serial loop otherwise.
//
//   ./batched_gemm_omp [--batch=B] [--size=N]
#include <cmath>
#include <iostream>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "blas/reference_gemm.hpp"
#include "common/cli.hpp"
#include "common/matrix.hpp"
#include "common/timer.hpp"
#include "core/gemm.hpp"

int main(int argc, char** argv) {
  using ag::index_t;
  ag::CliArgs args(argc, argv);
  const index_t batch = args.get_int("batch", 32);
  const index_t n = args.get_int("size", 96);

  const ag::Context ctx(ag::KernelShape{8, 6}, 1);  // shared, read-only
  std::vector<ag::Matrix<double>> as, bs, cs;
  for (index_t i = 0; i < batch; ++i) {
    as.push_back(ag::random_matrix(n, n, 100 + static_cast<std::uint64_t>(i)));
    bs.push_back(ag::random_matrix(n, n, 200 + static_cast<std::uint64_t>(i)));
    cs.emplace_back(n, n);
    cs.back().fill(0.0);
  }

#if defined(_OPENMP)
  std::cout << "OpenMP: " << omp_get_max_threads() << " threads\n";
#else
  std::cout << "OpenMP not enabled; serial loop\n";
#endif

  ag::Timer timer;
#if defined(_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (index_t i = 0; i < batch; ++i) {
    ag::dgemm(ag::Layout::ColMajor, ag::Trans::NoTrans, ag::Trans::NoTrans, n, n, n, 1.0,
              as[static_cast<std::size_t>(i)].data(), n, bs[static_cast<std::size_t>(i)].data(),
              n, 0.0, cs[static_cast<std::size_t>(i)].data(), n, ctx);
  }
  const double seconds = timer.seconds();

  // Validate one random element of every batch entry.
  double worst = 0;
  for (index_t i = 0; i < batch; ++i) {
    const auto& a = as[static_cast<std::size_t>(i)];
    const auto& b = bs[static_cast<std::size_t>(i)];
    const auto& c = cs[static_cast<std::size_t>(i)];
    const index_t r = i % n, q = (i * 7) % n;
    double acc = 0;
    for (index_t p = 0; p < n; ++p) acc += a(r, p) * b(p, q);
    worst = std::max(worst, std::abs(acc - c(r, q)));
  }

  const double flops = 2.0 * static_cast<double>(batch) * n * n * n;
  std::cout << "batch=" << batch << " size=" << n << ": " << seconds * 1e3 << " ms ("
            << flops / seconds * 1e-9 << " GFLOPS aggregate)\n"
            << "spot-check max error " << worst << (worst < 1e-10 ? " OK\n" : " FAILED\n");
  return worst < 1e-10 ? 0 : 1;
}
