// Full-stack tour of the simulated ARMv8 platform: generate the 8x6
// register kernel, run it on the pipeline model, trace a DGEMM through
// the cache hierarchy, and estimate end-to-end performance — the whole
// substrate the paper's evaluation rests on, in one program.
//
//   ./simulate_platform [--size=N] [--threads=T]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/block_sizes.hpp"
#include "isa/kernel_generator.hpp"
#include "model/machine.hpp"
#include "sim/pipeline.hpp"
#include "sim/timing.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  ag::CliArgs args(argc, argv);
  const std::int64_t size = args.get_int("size", 384);
  const int threads = static_cast<int>(args.get_int("threads", 1));
  const auto& machine = ag::model::xgene();
  const auto blocks = ag::paper_block_sizes({8, 6}, threads);

  std::cout << "Simulated platform: " << machine.name << " @ " << machine.freq_ghz
            << " GHz, peak " << machine.peak_gflops(threads) << " Gflops at " << threads
            << " thread(s)\n\n";

  // 1. The register kernel on the cycle-level core model.
  const auto gk = ag::isa::generate_register_kernel({8, 6}, machine);
  const ag::sim::PipelineConfig pipe;
  const auto pr = ag::sim::simulate_program(gk.body, 64, pipe);
  std::cout << "[pipeline] 8x6 kernel: " << pr.instructions << " instructions simulated, "
            << ag::Table::fmt(pr.cycles, 0) << " cycles, efficiency "
            << ag::Table::fmt_pct(pr.efficiency(pipe.fma_cycles), 1)
            << " (paper's micro-benchmark bound: 91.5%)\n";
  std::cout << "[rotation] unroll " << gk.rotation.unroll << ", reload distance "
            << gk.rotation.min_reload_distance << " fmlas; RAW distance "
            << gk.schedule.min_raw_distance << " fmlas\n\n";

  // 2. The memory hierarchy under a traced DGEMM.
  ag::sim::TraceConfig tcfg;
  tcfg.blocks = blocks;
  tcfg.threads = threads;
  const auto tr = ag::sim::trace_dgemm(machine, tcfg, size, size, size);
  std::cout << "[cache] traced dgemm " << size << "^3: " << tr.totals.l1_dcache_loads
            << " L1 loads, miss rate " << ag::Table::fmt_pct(tr.l1_load_miss_rate(), 2)
            << ", memory lines read " << tr.memory_reads << "\n\n";

  // 3. End-to-end estimate.
  const auto est = ag::sim::estimate_dgemm(machine, blocks, size, threads);
  std::cout << "[timing] estimated " << ag::Table::fmt(est.gflops, 2) << " Gflops ("
            << ag::Table::fmt_pct(est.efficiency, 1) << " of peak), kernel ceiling "
            << ag::Table::fmt_pct(est.kernel_ceiling, 1) << "\n"
            << "         cycle breakdown: kernel " << ag::Table::fmt(est.kernel_cycles, 0)
            << ", C update " << ag::Table::fmt(est.c_update_cycles, 0) << ", packing "
            << ag::Table::fmt(est.pack_cycles, 0) << ", sync "
            << ag::Table::fmt(est.sync_cycles, 0) << "\n";
  return 0;
}
