// Blocked Cholesky factorization (A = L L^T) built entirely on the
// library's Level-3 layer: dtrsm for the panel solves, dsyrk for the
// trailing symmetric update, dgemm underneath both — the canonical
// demonstration that a fast DGEMM carries the rest of Level-3 BLAS, as
// the paper's introduction argues.
//
//   ./cholesky [--size=N] [--threads=T] [--block=NB]
#include <cmath>
#include <iostream>
#include <vector>

#include "blas3/blas3.hpp"
#include "common/cli.hpp"
#include "common/matrix.hpp"
#include "common/timer.hpp"
#include "core/gemm.hpp"

namespace {

using ag::index_t;
using ag::Matrix;

// Unblocked Cholesky on the nb x nb diagonal block (lower triangle).
bool panel_cholesky(Matrix<double>& a, index_t k, index_t nb) {
  const index_t end = std::min(k + nb, a.rows());
  for (index_t j = k; j < end; ++j) {
    double d = a(j, j);
    for (index_t p = k; p < j; ++p) d -= a(j, p) * a(j, p);
    if (d <= 0.0) return false;  // not positive definite
    d = std::sqrt(d);
    a(j, j) = d;
    for (index_t i = j + 1; i < end; ++i) {
      double s = a(i, j);
      for (index_t p = k; p < j; ++p) s -= a(i, p) * a(j, p);
      a(i, j) = s / d;
    }
  }
  return true;
}

// Blocked right-looking Cholesky of the lower triangle.
bool cholesky(Matrix<double>& a, index_t nb, const ag::Context& ctx) {
  const index_t n = a.rows();
  for (index_t k = 0; k < n; k += nb) {
    const index_t kb = std::min(nb, n - k);
    if (!panel_cholesky(a, k, kb)) return false;
    if (k + kb >= n) break;
    // L21 := A21 * L11^-T  (triangular solve from the right).
    ag::dtrsm(ag::Side::Right, ag::Uplo::Lower, ag::Trans::Trans, ag::Diag::NonUnit,
              n - k - kb, kb, 1.0, &a(k, k), a.ld(), &a(k + kb, k), a.ld(), ctx);
    // A22 := A22 - L21 * L21^T  (symmetric rank-kb update).
    ag::dsyrk(ag::Uplo::Lower, ag::Trans::NoTrans, n - k - kb, kb, -1.0, &a(k + kb, k),
              a.ld(), 1.0, &a(k + kb, k + kb), a.ld(), ctx);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ag::CliArgs args(argc, argv);
  const index_t n = args.get_int("size", 768);
  const index_t nb = args.get_int("block", 96);
  const int threads = static_cast<int>(args.get_int("threads", 1));
  ag::Context ctx(ag::KernelShape{8, 6}, threads);

  std::cout << "Blocked Cholesky of a " << n << " x " << n << " SPD system, panel width "
            << nb << ", kernel " << ctx.kernel().name << "\n";

  // SPD test matrix: A = M M^T + n*I, built with the library's dsyrk.
  auto m0 = ag::random_matrix(n, n, 99);
  Matrix<double> a(n, n);
  a.fill(0.0);
  ag::dsyrk(ag::Uplo::Lower, ag::Trans::NoTrans, n, n, 1.0, m0.data(), m0.ld(), 0.0, a.data(),
            a.ld(), ctx);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Matrix<double> a0(a);

  ag::Timer timer;
  const bool ok = cholesky(a, nb, ctx);
  const double seconds = timer.seconds();
  if (!ok) {
    std::cout << "FAILED: matrix not positive definite\n";
    return 1;
  }

  // Residual check: ||L L^T - A0||_max on the lower triangle.
  double err = 0, scale = 0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double acc = 0;
      for (index_t p = 0; p <= j; ++p) acc += a(i, p) * a(j, p);
      err = std::max(err, std::abs(acc - a0(i, j)));
      scale = std::max(scale, std::abs(a0(i, j)));
    }
  }
  const double flops = static_cast<double>(n) * n * n / 3.0;
  std::cout << "factorization: " << seconds * 1e3 << " ms (" << flops / seconds * 1e-9
            << " GFLOPS)\nmax |L*L^T - A| = " << err << " (|A|max " << scale << ") "
            << (err < 1e-8 * scale * static_cast<double>(n) ? "OK" : "FAILED") << "\n";
  return err < 1e-8 * scale * static_cast<double>(n) ? 0 : 1;
}
