#!/usr/bin/env python3
"""Validate armgemm forensics bundles (schema + physical consistency).

Usage:
  forensics_check.py BUNDLE.json [BUNDLE2.json ...]  # validate bundles
  forensics_check.py --dir DIR                       # validate every
                                                     # forensics-*.json in DIR
  forensics_check.py --expect-count N --dir DIR      # also require exactly
                                                     # N bundles present
  forensics_check.py --self-test                     # built-in tests

Stdlib only. A bundle is produced by the obs/forensics capture path
(schema "armgemm-forensics/1") when the drift detector fires, a call
blows through the slow-call threshold, or armgemm_forensics_capture()
is invoked. Checks:

  * schema tag, reason, and required top-level sections are present and
    correctly typed (scheduler / panel_cache / tune may be null: the
    capture simply records that the runtime had no such state);
  * the subject call's phase timeline, when present, is physically
    consistent: every phase >= 0 and the per-worker attributed total
    does not exceed the call's wall time (batch entries: wall time plus
    the recorded queue wait), within tolerance;
  * the same invariant holds for every flight-window record carrying a
    timeline;
  * the rate-limit section agrees with itself (captures >= 1 when the
    bundle exists).

Exit codes: 0 all bundles valid, 1 a bundle failed validation or the
--expect-count did not match, 2 usage error.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA = "armgemm-forensics/1"
REASONS = ("drift", "slow_call", "manual")
PHASES = ("queue_wait", "pack_a", "pack_b", "kernel", "barrier",
          "cache_stall", "epilogue")

# Phase sums come from independent clock reads folded through float
# seconds; allow 1% of wall plus a microsecond of absolute slack.
REL_TOL = 0.01
ABS_TOL = 1e-6


def _fail(errors, path, msg):
    errors.append("%s: %s" % (path, msg))


def _check_phases_block(errors, path, label, phases, wall, queue_budget):
    """Validates one {"workers": N, "<phase>": seconds...} timeline."""
    if not isinstance(phases, dict):
        _fail(errors, path, "%s: phases is not an object" % label)
        return
    workers = phases.get("workers")
    if not isinstance(workers, int) or workers < 1:
        _fail(errors, path, "%s: bad workers %r" % (label, workers))
        return
    total = 0.0
    for p in PHASES:
        v = phases.get(p)
        if not isinstance(v, (int, float)) or v < 0:
            _fail(errors, path, "%s: phase %s is %r" % (label, p, v))
            return
        total += v
    # The layer attributes each phase as summed-seconds / workers, so the
    # per-worker attributed total must fit inside the wall time (plus the
    # queue wait for batch entries, which is pre-scaled by workers).
    attributed = total / workers
    budget = wall + queue_budget
    if attributed > budget * (1 + REL_TOL) + ABS_TOL:
        _fail(errors, path,
              "%s: attributed %.3es exceeds wall %.3es (+queue %.3es)"
              % (label, attributed, wall, queue_budget))


def _check_record(errors, path, label, rec):
    """Validates one call record (the subject call or a flight entry)."""
    if not isinstance(rec, dict):
        _fail(errors, path, "%s: record is not an object" % label)
        return
    for key in ("m", "n", "k", "threads", "seconds", "schedule"):
        if key not in rec:
            _fail(errors, path, "%s: missing %s" % (label, key))
            return
    wall = rec["seconds"]
    if not isinstance(wall, (int, float)) or wall < 0:
        _fail(errors, path, "%s: bad seconds %r" % (label, wall))
        return
    phases = rec.get("phases")
    if phases is None:
        return  # attribution was off for this call; nothing to check
    queue_budget = 0.0
    if rec["schedule"] == "batch":
        queue_budget = phases.get("queue_wait", 0.0) \
            if isinstance(phases, dict) else 0.0
        queue_budget = queue_budget if isinstance(queue_budget, (int, float)) \
            and queue_budget > 0 else 0.0
    _check_phases_block(errors, path, label, phases, wall, queue_budget)


def check_bundle(path, data, errors):
    """Appends failure strings to errors; no output when the bundle is ok."""
    if not isinstance(data, dict):
        _fail(errors, path, "bundle is not a JSON object")
        return
    if data.get("schema") != SCHEMA:
        _fail(errors, path, "schema %r != %r" % (data.get("schema"), SCHEMA))
        return
    if data.get("reason") not in REASONS:
        _fail(errors, path, "unknown reason %r" % data.get("reason"))
    for key, types in (("t", (int, float)), ("uptime_seconds", (int, float)),
                       ("expectation", dict), ("pmu", dict), ("flight", list),
                       ("rate_limit", dict)):
        if not isinstance(data.get(key), types):
            _fail(errors, path, "missing or mistyped %r" % key)
            return
    for key in ("scheduler", "panel_cache", "tune"):
        if key not in data:
            _fail(errors, path, "missing %r" % key)
            return
        if data[key] is not None and not isinstance(data[key], dict):
            _fail(errors, path, "%r is neither null nor an object" % key)

    call = data.get("call")
    if call is not None:
        _check_record(errors, path, "call", call)
        # The top-level phases section restates the subject timeline with
        # the expected-vs-measured split; its attributed total must obey
        # the same wall-time bound.
        split = data.get("phases")
        if split is not None:
            if not isinstance(split, dict):
                _fail(errors, path, "phases split is not an object")
            else:
                wall = split.get("wall_seconds", call.get("seconds", 0.0))
                attr = split.get("attributed_seconds", 0.0)
                queue = 0.0
                if call.get("schedule") == "batch":
                    queue = split.get("measured_seconds", {}).get(
                        "queue_wait", 0.0) * split.get("workers", 1)
                if isinstance(attr, (int, float)) and isinstance(
                        wall, (int, float)):
                    if attr > (wall + queue) * (1 + REL_TOL) + ABS_TOL:
                        _fail(errors, path,
                              "phases split attributed %.3es > wall %.3es"
                              % (attr, wall))
                else:
                    _fail(errors, path, "phases split fields mistyped")
    elif data.get("reason") != "manual":
        # Automatic triggers always have a subject call; manual captures
        # may fire before any call was recorded.
        _fail(errors, path, "automatic bundle with no subject call")

    for i, rec in enumerate(data["flight"]):
        _check_record(errors, path, "flight[%d]" % i, rec)

    rl = data["rate_limit"]
    caps = rl.get("captures")
    if not isinstance(caps, int) or caps < 1:
        _fail(errors, path, "rate_limit.captures %r < 1" % caps)


def check_file(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        _fail(errors, path, "unreadable: %s" % e)
        return
    check_bundle(path, data, errors)


# ---- self test -------------------------------------------------------------

def _valid_bundle():
    phases = {"workers": 2, "queue_wait": 0.0, "pack_a": 0.1, "pack_b": 0.1,
              "kernel": 1.5, "barrier": 0.1, "cache_stall": 0.0,
              "epilogue": 0.0}
    call = {"t": 1.0, "m": 96, "n": 96, "k": 96, "threads": 2,
            "schedule": "parallel", "seconds": 1.0, "phases": phases}
    return {
        "schema": SCHEMA, "reason": "drift", "t": 1.0, "uptime_seconds": 2.0,
        "call": call,
        "phases": {"workers": 2, "wall_seconds": 1.0,
                   "attributed_seconds": 0.9,
                   "measured_seconds": {p: 0.0 for p in PHASES}},
        "expectation": {"expected_gflops": 10.0}, "pmu": {"hardware": False},
        "scheduler": None, "panel_cache": None, "tune": None,
        "flight": [call],
        "rate_limit": {"interval_seconds": 60, "suppressed": 0, "captures": 1},
    }


def _self_test():
    errors = []
    check_bundle("ok", _valid_bundle(), errors)
    assert not errors, errors

    bad = _valid_bundle()
    bad["schema"] = "armgemm-forensics/0"
    errors = []
    check_bundle("schema", bad, errors)
    assert errors, "stale schema accepted"

    bad = _valid_bundle()
    bad["call"]["phases"]["kernel"] = 5.0  # attributed 2.9 > wall 1.0
    errors = []
    check_bundle("oversum", bad, errors)
    assert any("attributed" in e for e in errors), errors

    # Batch entries may exceed wall by their queue wait, but no further.
    batch = _valid_bundle()
    batch["call"]["schedule"] = "batch"
    batch["call"]["phases"] = {"workers": 1, "queue_wait": 2.0, "pack_a": 0.0,
                               "pack_b": 0.0, "kernel": 0.9,
                               "cache_stall": 0.0, "barrier": 0.0,
                               "epilogue": 0.0}
    batch["flight"] = []
    errors = []
    check_bundle("batch", batch, errors)
    assert not errors, errors
    batch["call"]["phases"]["kernel"] = 3.5
    errors = []
    check_bundle("batch-over", batch, errors)
    assert any("attributed" in e for e in errors), errors

    bad = _valid_bundle()
    del bad["call"]
    errors = []
    check_bundle("no-call", bad, errors)
    assert any("no subject call" in e for e in errors), errors

    print("forensics_check: self-test ok")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("bundles", nargs="*", help="bundle JSON files")
    ap.add_argument("--dir", help="validate every forensics-*.json here")
    ap.add_argument("--expect-count", type=int, default=None,
                    help="require exactly N bundles (with --dir)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return _self_test()

    paths = list(args.bundles)
    if args.dir:
        paths += sorted(glob.glob(os.path.join(args.dir, "forensics-*.json")))
    if args.expect_count is not None and len(paths) != args.expect_count:
        print("forensics_check: expected %d bundles, found %d"
              % (args.expect_count, len(paths)), file=sys.stderr)
        return 1
    if not paths:
        print("forensics_check: no bundles given", file=sys.stderr)
        return 2

    errors = []
    for path in paths:
        check_file(path, errors)
    for e in errors:
        print("forensics_check: FAIL %s" % e, file=sys.stderr)
    if not errors:
        print("forensics_check: %d bundle%s ok"
              % (len(paths), "" if len(paths) == 1 else "s"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
