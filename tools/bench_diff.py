#!/usr/bin/env python3
"""Render and compare bench/regress BENCH_*.json reports.

Usage:
  bench_diff.py REPORT.json                 # pretty-print one run
  bench_diff.py BASE.json NEW.json          # side-by-side diff, nonzero
                                            # exit on efficiency regression
  bench_diff.py --check-schema REPORT.json  # validate schema only
  bench_diff.py --self-test                 # built-in schema/diff tests

Stdlib only (json/argparse); the schema is versioned as
"armgemm-bench/6" (shaped m x n x k points, packing-bandwidth points,
batched-GEMM points, tuned-vs-default autotuner points and topology-
schedule points from the analytic big.LITTLE simulator) and produced by
bench/regress.cpp. Older reports — schema 5 (no "topology" array),
schema 4 (no "tune" array), schema 3 (no "batch" array), schema 2 (no
"packing" array) and schema 1 (square-only, keyed by "n") — are
accepted for both printing and diffing: missing m/k default to n, and
packing/batch/tune/topology points appear as unmatched rather than
failing validation.
"""

import argparse
import json
import sys

SCHEMA = "armgemm-bench/6"
SCHEMA_V5 = "armgemm-bench/5"  # no topology-schedule points
SCHEMA_V4 = "armgemm-bench/4"  # no autotuner tuned-vs-default points
SCHEMA_V3 = "armgemm-bench/3"  # no batched-GEMM points
SCHEMA_V2 = "armgemm-bench/2"  # no packing-bandwidth points
SCHEMA_V1 = "armgemm-bench/1"  # square-only; m and k implied by n

TOP_LEVEL_REQUIRED = {
    "schema": str,
    "host": str,
    "date": str,
    "reps": (int, float),
    "pmu_hardware": bool,
    "peak_gflops_per_core": (int, float),
    "calibration": dict,
    "results": list,
}

RESULT_REQUIRED = {
    "n": (int, float),
    "threads": (int, float),
    "best_seconds": (int, float),
    "gflops": (int, float),
    "efficiency": (int, float),
    "layers": dict,
    "pmu": dict,
}

PACKING_REQUIRED = {
    "op": str,
    "trans": str,
    "best_seconds": (int, float),
    "gbps": (int, float),
}

BATCH_REQUIRED = {
    "label": str,
    "count": (int, float),
    "threads": (int, float),
    "best_seconds": (int, float),
    "gflops": (int, float),
    "speedup": (int, float),
}

TUNE_REQUIRED = {
    "n": (int, float),
    "threads": (int, float),
    "default_gflops": (int, float),
    "tuned_gflops": (int, float),
    "ratio": (int, float),
}

TOPOLOGY_REQUIRED = {
    "n": (int, float),
    "round_robin_wall": (int, float),
    "weighted_steal_wall": (int, float),
    "speedup": (int, float),
}


def validate(report):
    """Returns a list of schema problems (empty when valid)."""
    problems = []
    if not isinstance(report, dict):
        return ["top level is not an object"]
    for key, types in TOP_LEVEL_REQUIRED.items():
        if key not in report:
            problems.append(f"missing top-level key: {key}")
        elif not isinstance(report[key], types):
            problems.append(f"wrong type for {key}: {type(report[key]).__name__}")
    if report.get("schema") not in (None, SCHEMA, SCHEMA_V5, SCHEMA_V4, SCHEMA_V3,
                                    SCHEMA_V2, SCHEMA_V1):
        problems.append(
            f"schema is {report['schema']!r}, expected {SCHEMA!r}, {SCHEMA_V5!r}, "
            f"{SCHEMA_V4!r}, {SCHEMA_V3!r}, {SCHEMA_V2!r} or {SCHEMA_V1!r}")
    if (report.get("schema") in (SCHEMA, SCHEMA_V5, SCHEMA_V4, SCHEMA_V3)
            and not isinstance(report.get("packing"), list)):
        problems.append("schema 3+ report missing packing array")
    if (report.get("schema") in (SCHEMA, SCHEMA_V5, SCHEMA_V4)
            and not isinstance(report.get("batch"), list)):
        problems.append("schema 4+ report missing batch array")
    if (report.get("schema") in (SCHEMA, SCHEMA_V5)
            and not isinstance(report.get("tune"), list)):
        problems.append("schema 5+ report missing tune array")
    if report.get("schema") == SCHEMA and not isinstance(report.get("topology"), list):
        problems.append("schema 6 report missing topology array")
    for i, t in enumerate(report.get("topology", []) or []):
        if not isinstance(t, dict):
            problems.append(f"topology[{i}] is not an object")
            continue
        for key, types in TOPOLOGY_REQUIRED.items():
            if key not in t:
                problems.append(f"topology[{i}] missing key: {key}")
            elif not isinstance(t[key], types):
                problems.append(f"topology[{i}].{key} has wrong type")
    for i, t in enumerate(report.get("tune", []) or []):
        if not isinstance(t, dict):
            problems.append(f"tune[{i}] is not an object")
            continue
        for key, types in TUNE_REQUIRED.items():
            if key not in t:
                problems.append(f"tune[{i}] missing key: {key}")
            elif not isinstance(t[key], types):
                problems.append(f"tune[{i}].{key} has wrong type")
    for i, b in enumerate(report.get("batch", []) or []):
        if not isinstance(b, dict):
            problems.append(f"batch[{i}] is not an object")
            continue
        for key, types in BATCH_REQUIRED.items():
            if key not in b:
                problems.append(f"batch[{i}] missing key: {key}")
            elif not isinstance(b[key], types):
                problems.append(f"batch[{i}].{key} has wrong type")
    for i, p in enumerate(report.get("packing", []) or []):
        if not isinstance(p, dict):
            problems.append(f"packing[{i}] is not an object")
            continue
        for key, types in PACKING_REQUIRED.items():
            if key not in p:
                problems.append(f"packing[{i}] missing key: {key}")
            elif not isinstance(p[key], types):
                problems.append(f"packing[{i}].{key} has wrong type")
    for i, r in enumerate(report.get("results", [])):
        if not isinstance(r, dict):
            problems.append(f"results[{i}] is not an object")
            continue
        for key, types in RESULT_REQUIRED.items():
            if key not in r:
                problems.append(f"results[{i}] missing key: {key}")
            elif not isinstance(r[key], types):
                problems.append(f"results[{i}].{key} has wrong type")
    return problems


def load(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    problems = validate(report)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return report


def key(result):
    n = int(result["n"])
    return (int(result.get("m", n)), n, int(result.get("k", n)),
            int(result["threads"]))


def shape_label(result):
    m, n, k, _ = key(result)
    return str(n) if m == n == k else f"{m}x{n}x{k}"


def pack_key(point):
    return (point["op"], point["trans"])


def pack_label(point):
    return f"{point['op']}/{point['trans']}"


def batch_key(point):
    return (point["label"], int(point["threads"]))


def batch_label(point):
    return f"{point['label']} threads={int(point['threads'])}"


def tune_key(point):
    return (int(point["n"]), int(point["threads"]))


def tune_label(point):
    return f"n={int(point['n'])} threads={int(point['threads'])}"


def topo_key(point):
    return int(point["n"])


def topo_label(point):
    return f"n={int(point['n'])}"


def print_report(report):
    print(f"host {report['host']}  date {report['date']}  "
          f"peak {report['peak_gflops_per_core']:.2f} Gflops/core  "
          f"pmu {'hw' if report['pmu_hardware'] else 'fallback'}")
    for p in report.get("packing", []):
        print(f"packing {pack_label(p):>10}: {p['gbps']:.2f} GB/s")
    for b in report.get("batch", []):
        print(f"batch {batch_label(b)}: {b['gflops']:.2f} Gflops "
              f"({b['speedup']:.2f}x vs loop of calls)")
    for t in report.get("tune", []):
        print(f"tune {tune_label(t)}: default {t['default_gflops']:.2f} -> "
              f"tuned {t['tuned_gflops']:.2f} Gflops ({t['ratio']:.2f}x)")
    for t in report.get("topology", []):
        print(f"topology {topo_label(t)}: round-robin {t['round_robin_wall']:.1f} -> "
              f"weighted {t['weighted_steal_wall']:.1f} ({t['speedup']:.3f}x)")
    print(f"{'shape':>14} {'thr':>4} {'Gflops':>9} {'eff':>7} {'GEBP s':>10} {'pack s':>10} "
          f"{'barrier s':>10} {'small s':>10}")
    for r in report["results"]:
        layers = r["layers"]
        pack = layers.get("pack_a_seconds", 0) + layers.get("pack_b_seconds", 0)
        print(f"{shape_label(r):>14} {int(r['threads']):>4} {r['gflops']:>9.2f} "
              f"{r['efficiency']:>6.1%} {layers.get('gebp_seconds', 0):>10.4f} "
              f"{pack:>10.4f} {layers.get('barrier_seconds', 0):>10.4f} "
              f"{layers.get('small_seconds', 0):>10.4f}")


def diff(base, new, threshold):
    """Prints the comparison; returns (regressions, unmatched).

    `unmatched` counts configurations present on only one side — new
    configs with no baseline plus baseline configs the new run dropped.
    Both are listed explicitly so a shrinking sweep can never silently
    pass the gate; --require-match turns them into a failure.
    """
    base_by_key = {key(r): r for r in base["results"]}
    new_keys = {key(r) for r in new["results"]}
    regressions = 0
    unmatched = []
    print(f"{'shape':>14} {'thr':>4} {'base eff':>9} {'new eff':>9} {'rel delta':>10}  verdict")
    for r in new["results"]:
        b = base_by_key.get(key(r))
        if b is None:
            print(f"{shape_label(r):>14} {int(r['threads']):>4} {'-':>9} "
                  f"{r['efficiency']:>8.1%} {'-':>10}  new config (NOT gated)")
            unmatched.append(f"{shape_label(r)} threads={int(r['threads'])} (no baseline)")
            continue
        base_eff, new_eff = b["efficiency"], r["efficiency"]
        drop = (base_eff - new_eff) / base_eff if base_eff > 0 else 0.0
        bad = drop > threshold
        regressions += bad
        print(f"{shape_label(r):>14} {int(r['threads']):>4} {base_eff:>8.1%} {new_eff:>8.1%} "
              f"{-drop:>+10.1%}  {'REGRESSION' if bad else 'ok'}")
    for k, b in base_by_key.items():
        if k not in new_keys:
            print(f"{shape_label(b):>14} {int(b['threads']):>4} {b['efficiency']:>8.1%} "
                  f"{'-':>9} {'-':>10}  dropped from new run (NOT gated)")
            unmatched.append(
                f"{shape_label(b)} threads={int(b['threads'])} (missing from new run)")
    # Packing-bandwidth points: gated on relative GB/s drop, same rules.
    base_packs = {pack_key(p): p for p in base.get("packing", [])}
    new_pack_keys = {pack_key(p) for p in new.get("packing", [])}
    for p in new.get("packing", []):
        b = base_packs.get(pack_key(p))
        if b is None:
            print(f"packing {pack_label(p)}: {p['gbps']:.2f} GB/s, "
                  "no baseline entry (NOT gated)")
            unmatched.append(f"packing {pack_label(p)} (no baseline)")
            continue
        drop = (b["gbps"] - p["gbps"]) / b["gbps"] if b["gbps"] > 0 else 0.0
        bad = drop > threshold
        regressions += bad
        print(f"packing {pack_label(p)}: {b['gbps']:.2f} -> {p['gbps']:.2f} GB/s "
              f"({-drop:+.1%})  {'REGRESSION' if bad else 'ok'}")
    for k, b in base_packs.items():
        if k not in new_pack_keys:
            print(f"packing {pack_label(b)}: dropped from new run (NOT gated)")
            unmatched.append(f"packing {pack_label(b)} (missing from new run)")
    # Batched points: gated on relative aggregate-Gflops drop, same rules.
    base_batches = {batch_key(b): b for b in base.get("batch", [])}
    new_batch_keys = {batch_key(b) for b in new.get("batch", [])}
    for p in new.get("batch", []):
        b = base_batches.get(batch_key(p))
        if b is None:
            print(f"batch {batch_label(p)}: {p['gflops']:.2f} Gflops, "
                  "no baseline entry (NOT gated)")
            unmatched.append(f"batch {batch_label(p)} (no baseline)")
            continue
        drop = (b["gflops"] - p["gflops"]) / b["gflops"] if b["gflops"] > 0 else 0.0
        bad = drop > threshold
        regressions += bad
        print(f"batch {batch_label(p)}: {b['gflops']:.2f} -> {p['gflops']:.2f} Gflops "
              f"({-drop:+.1%})  {'REGRESSION' if bad else 'ok'}")
    for k, b in base_batches.items():
        if k not in new_batch_keys:
            print(f"batch {batch_label(b)}: dropped from new run (NOT gated)")
            unmatched.append(f"batch {batch_label(b)} (missing from new run)")
    # Autotuner points: gated on relative tuned-Gflops drop, same rules.
    base_tunes = {tune_key(t): t for t in base.get("tune", [])}
    new_tune_keys = {tune_key(t) for t in new.get("tune", [])}
    for t in new.get("tune", []):
        b = base_tunes.get(tune_key(t))
        if b is None:
            print(f"tune {tune_label(t)}: {t['tuned_gflops']:.2f} Gflops tuned, "
                  "no baseline entry (NOT gated)")
            unmatched.append(f"tune {tune_label(t)} (no baseline)")
            continue
        base_g, new_g = b["tuned_gflops"], t["tuned_gflops"]
        drop = (base_g - new_g) / base_g if base_g > 0 else 0.0
        bad = drop > threshold
        regressions += bad
        print(f"tune {tune_label(t)}: {base_g:.2f} -> {new_g:.2f} Gflops tuned "
              f"({-drop:+.1%})  {'REGRESSION' if bad else 'ok'}")
    for k, b in base_tunes.items():
        if k not in new_tune_keys:
            print(f"tune {tune_label(b)}: dropped from new run (NOT gated)")
            unmatched.append(f"tune {tune_label(b)} (missing from new run)")
    # Topology-schedule points: gated on relative speedup drop, same rules.
    base_topos = {topo_key(t): t for t in base.get("topology", [])}
    new_topo_keys = {topo_key(t) for t in new.get("topology", [])}
    for t in new.get("topology", []):
        b = base_topos.get(topo_key(t))
        if b is None:
            print(f"topology {topo_label(t)}: {t['speedup']:.3f}x weighted speedup, "
                  "no baseline entry (NOT gated)")
            unmatched.append(f"topology {topo_label(t)} (no baseline)")
            continue
        base_s, new_s = b["speedup"], t["speedup"]
        drop = (base_s - new_s) / base_s if base_s > 0 else 0.0
        bad = drop > threshold
        regressions += bad
        print(f"topology {topo_label(t)}: {base_s:.3f} -> {new_s:.3f}x speedup "
              f"({-drop:+.1%})  {'REGRESSION' if bad else 'ok'}")
    for k, b in base_topos.items():
        if k not in new_topo_keys:
            print(f"topology {topo_label(b)}: dropped from new run (NOT gated)")
            unmatched.append(f"topology {topo_label(b)} (missing from new run)")
    if unmatched:
        print(f"bench_diff: WARNING: {len(unmatched)} configuration(s) not gated:",
              file=sys.stderr)
        for u in unmatched:
            print(f"  {u}", file=sys.stderr)
    return regressions, unmatched


def make_sample(eff_scale=1.0, schema=SCHEMA, pack_scale=1.0, batch_scale=1.0,
                tune_scale=1.0, topo_scale=1.0):
    result = {
        "n": 128,
        "threads": 1,
        "best_seconds": 0.001,
        "gflops": 8.0 * eff_scale,
        "efficiency": 0.8 * eff_scale,
        "layers": {"gebp_seconds": 0.0008, "small_seconds": 0.0},
        "pmu": {"cycles": 1000},
    }
    if schema != SCHEMA_V1:
        result["m"] = result["k"] = 128
        result["layers"]["small_calls"] = 0
    report = {
        "schema": schema,
        "host": "self-test",
        "date": "19700101",
        "reps": 3,
        "pmu_hardware": False,
        "peak_gflops_per_core": 10.0,
        "calibration": {"mu": 1e-10},
        "results": [result],
    }
    if schema in (SCHEMA, SCHEMA_V5, SCHEMA_V4, SCHEMA_V3):
        report["packing"] = [
            {"op": op, "trans": trans, "best_seconds": 0.0001,
             "gbps": 10.0 * pack_scale}
            for op in ("pack_a", "pack_b") for trans in ("N", "T")
        ]
    if schema in (SCHEMA, SCHEMA_V5, SCHEMA_V4):
        report["batch"] = [
            {"label": label, "m": 64, "n": 64, "k": 64, "count": 64, "threads": 1,
             "best_seconds": 0.001, "gflops": 6.0 * batch_scale,
             "loop_seconds": 0.002, "speedup": 2.0}
            for label in ("batch64_small", "batch8_skinny")
        ]
    if schema in (SCHEMA, SCHEMA_V5):
        tuned = 7.5 * tune_scale
        report["tune"] = [
            {"n": 256, "threads": 1, "default_gflops": 7.0,
             "tuned_gflops": tuned, "ratio": tuned / 7.0}
        ]
    if schema == SCHEMA:
        report["topology"] = [
            {"n": 256, "round_robin_wall": 12.0, "weighted_wall": 9.0,
             "weighted_steal_wall": 8.0, "speedup": 1.5 * topo_scale}
        ]
    return report


def self_test():
    ok = make_sample()
    assert validate(ok) == [], validate(ok)

    bad = make_sample()
    del bad["results"][0]["efficiency"]
    bad["schema"] = "armgemm-bench/999"
    problems = validate(bad)
    assert any("schema" in p for p in problems), problems
    assert any("efficiency" in p for p in problems), problems

    assert diff(make_sample(), make_sample(), 0.10) == (0, [])
    assert diff(make_sample(), make_sample(eff_scale=0.5), 0.10) == (1, [])
    assert diff(make_sample(), make_sample(eff_scale=0.95), 0.10) == (0, [])

    # Packing points gate on GB/s: all four regress here, none at 0.95x.
    n_reg, unmatched = diff(make_sample(), make_sample(pack_scale=0.5), 0.10)
    assert (n_reg, unmatched) == (4, []), (n_reg, unmatched)
    assert diff(make_sample(), make_sample(pack_scale=0.95), 0.10) == (0, [])
    # Batched points gate on aggregate Gflops: both regress at 0.5x.
    n_reg, unmatched = diff(make_sample(), make_sample(batch_scale=0.5), 0.10)
    assert (n_reg, unmatched) == (2, []), (n_reg, unmatched)
    assert diff(make_sample(), make_sample(batch_scale=0.95), 0.10) == (0, [])
    # Autotuner points gate on tuned Gflops.
    n_reg, unmatched = diff(make_sample(), make_sample(tune_scale=0.5), 0.10)
    assert (n_reg, unmatched) == (1, []), (n_reg, unmatched)
    assert diff(make_sample(), make_sample(tune_scale=0.95), 0.10) == (0, [])
    # Topology-schedule points gate on weighted speedup.
    n_reg, unmatched = diff(make_sample(), make_sample(topo_scale=0.5), 0.10)
    assert (n_reg, unmatched) == (1, []), (n_reg, unmatched)
    assert diff(make_sample(), make_sample(topo_scale=0.95), 0.10) == (0, [])
    # A schema-6 report without packing, batch, tune or topology fails
    # validation ...
    no_pack = make_sample()
    del no_pack["packing"]
    assert any("packing" in p for p in validate(no_pack)), validate(no_pack)
    no_batch = make_sample()
    del no_batch["batch"]
    assert any("batch" in p for p in validate(no_batch)), validate(no_batch)
    no_tune = make_sample()
    del no_tune["tune"]
    assert any("tune" in p for p in validate(no_tune)), validate(no_tune)
    no_topo = make_sample()
    del no_topo["topology"]
    assert any("topology" in p for p in validate(no_topo)), validate(no_topo)
    # ... but a schema-5 baseline (no topology array) diffs cleanly, with
    # the new run's topology point reported as unmatched, never gated.
    v5 = make_sample(schema=SCHEMA_V5)
    assert validate(v5) == [], validate(v5)
    n_reg, unmatched = diff(v5, make_sample(topo_scale=0.1), 0.10)
    assert n_reg == 0 and len(unmatched) == 1, (n_reg, unmatched)
    # A schema-4 baseline additionally leaves the tune point unmatched.
    v4 = make_sample(schema=SCHEMA_V4)
    assert validate(v4) == [], validate(v4)
    n_reg, unmatched = diff(v4, make_sample(tune_scale=0.1), 0.10)
    assert n_reg == 0 and len(unmatched) == 2, (n_reg, unmatched)
    # A schema-3 baseline (packing, no batch) additionally leaves the
    # batch points unmatched.
    v3 = make_sample(schema=SCHEMA_V3)
    assert validate(v3) == [], validate(v3)
    n_reg, unmatched = diff(v3, make_sample(batch_scale=0.1), 0.10)
    assert n_reg == 0 and len(unmatched) == 4, (n_reg, unmatched)
    # A schema-2 baseline (no packing either) leaves packing, batch, tune
    # AND topology points unmatched.
    v2 = make_sample(schema=SCHEMA_V2)
    assert validate(v2) == [], validate(v2)
    n_reg, unmatched = diff(v2, make_sample(pack_scale=0.1), 0.10)
    assert n_reg == 0 and len(unmatched) == 8, (n_reg, unmatched)

    # Schema-1 reports validate and key against schema-2 square points:
    # {"n": 128} must match {"m": 128, "n": 128, "k": 128}.
    v1 = make_sample(schema=SCHEMA_V1)
    assert validate(v1) == [], validate(v1)
    assert key(v1["results"][0]) == key(make_sample()["results"][0])
    # Against a v1 baseline the new run's packing, batch, tune and
    # topology points are unmatched (reported, never gated); the
    # efficiency gate still fires.
    n_reg, unmatched = diff(v1, make_sample(eff_scale=0.5), 0.10)
    assert n_reg == 1 and len(unmatched) == 8, (n_reg, unmatched)
    n_reg, unmatched = diff(v1, make_sample(), 0.10)
    assert n_reg == 0 and len(unmatched) == 8, (n_reg, unmatched)

    # Unmatched configurations are reported in both directions, never
    # silently: a new config with no baseline and a baseline config the
    # new run dropped each produce one unmatched entry (and no
    # regression by themselves).
    extra = make_sample()
    extra["results"].append(dict(extra["results"][0], n=256, m=256, k=256))
    n_reg, unmatched = diff(make_sample(), extra, 0.10)
    assert n_reg == 0 and len(unmatched) == 1, (n_reg, unmatched)
    assert "no baseline" in unmatched[0], unmatched
    n_reg, unmatched = diff(extra, make_sample(), 0.10)
    assert n_reg == 0 and len(unmatched) == 1, (n_reg, unmatched)
    assert "missing from new run" in unmatched[0], unmatched
    # Disjoint reports: every config on both sides is unmatched.
    other = make_sample()
    other["results"][0].update(n=512, m=512, k=512)
    n_reg, unmatched = diff(make_sample(), other, 0.10)
    assert n_reg == 0 and len(unmatched) == 2, (n_reg, unmatched)

    # Shaped points never collide with squares of the same n.
    skinny = make_sample()
    skinny["results"][0]["m"] = 2048
    assert key(skinny["results"][0]) != key(make_sample()["results"][0])
    assert shape_label(skinny["results"][0]) == "2048x128x128"

    rt = json.loads(json.dumps(make_sample()))
    assert validate(rt) == []
    print("bench_diff self-test: all checks passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("reports", nargs="*", help="one report to print, or BASE NEW to diff")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative efficiency drop treated as a regression")
    parser.add_argument("--require-match", action="store_true",
                        help="fail when any configuration exists on only one side")
    parser.add_argument("--check-schema", action="store_true",
                        help="validate the report(s) and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in schema/diff tests")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.reports or len(args.reports) > 2:
        parser.error("expected 1 report (print/validate) or 2 (diff)")

    try:
        reports = [load(p) for p in args.reports]
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    if args.check_schema:
        for path in args.reports:
            print(f"{path}: schema ok")
        return 0
    if len(reports) == 1:
        print_report(reports[0])
        return 0
    regressions, unmatched = diff(reports[0], reports[1], args.threshold)
    if regressions:
        print(f"bench_diff: {regressions} regression(s)", file=sys.stderr)
        return 1
    if unmatched and args.require_match:
        print(f"bench_diff: {len(unmatched)} unmatched configuration(s) "
              "with --require-match", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
